"""Compilation of networks and certificate assignments into array form.

The vectorized backend verifies all nodes of a network at once, which needs
two ingredients in struct-of-arrays form, both indexed by the node ids of the
network's compiled :class:`~repro.graphs.indexed.IndexedGraph`:

* a :class:`VectorContext` — the certificate-independent part: the CSR
  adjacency (``indptr`` / ``dst``), the matching per-directed-edge source
  index ``src``, and the network identifier of every node.  It is built once
  per network (the :class:`~repro.distributed.engine.SimulationEngine` caches
  it alongside its structural views);
* a :class:`CertificateTable` — the certificate-dependent part: one int64
  column per declared certificate field plus presence masks, rebuilt per
  assignment (the per-trial cost of the backend).

**Exactness contract.**  The kernels must reproduce the reference verifier's
per-node decisions bit for bit, including on adversarial assignments, so the
compiler never coerces a value it cannot represent exactly: a certificate
that is not an instance of the kernel's certificate class, or that carries a
non-integer field, or an integer outside ``(-2**31, 2**31)`` (the bound that
keeps every segment sum inside int64), is marked *unrepresentable*.  The
engine re-runs the reference verifier at every node that can see an
unrepresentable certificate, so such assignments stay correct — they just
leave the fast path.  ``None`` certificates (absent nodes) are representable:
the reference verifiers reject on them locally, and the kernels mirror that
through the ``present`` mask.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.observability.tracer import current as current_tracer

try:  # numpy is an optional dependency of the core library
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.network import Network

__all__ = [
    "HAVE_NUMPY",
    "INT_LIMIT",
    "ID_LIMIT",
    "COMPILE_CHUNK",
    "UNREPRESENTABLE",
    "FieldSpec",
    "VectorContext",
    "BatchedContext",
    "CertificateTable",
    "EdgeListTable",
    "IntervalTable",
    "build_vector_context",
    "build_batched_context",
    "compile_certificates",
    "compile_edge_lists",
    "node_row_key",
    "list_rows_key",
    "NONE_SENTINEL",
]

#: certificate integer fields must lie strictly inside ``(-INT_LIMIT, INT_LIMIT)``
#: so that a per-node sum of up to ``n < 2**31`` of them cannot overflow int64.
INT_LIMIT = 1 << 31

#: network identifiers only ever sit on one side of an equality comparison, so
#: they merely need to be exactly representable as int64.
ID_LIMIT = 1 << 62

#: node-range chunk of the streamed table compilers: the per-chunk Python
#: staging lists are bounded by this many rows before being flushed into the
#: dense int64 arrays, so a 10^6-node compile never holds per-node Python int
#: objects for the whole graph at once.  Mirrors the default
#: ``batch_node_budget`` of the batched sweeps — one knob scale-reasons about
#: both the sweep slabs and the compile staging.
COMPILE_CHUNK = 1 << 16


#: sentinel a :attr:`FieldSpec.getter` returns to mark the whole certificate
#: unrepresentable (e.g. a nested object of the wrong type); never a value
UNREPRESENTABLE = object()


@dataclass(frozen=True)
class FieldSpec:
    """One certificate field a kernel consumes: its name and optionality.

    ``optional`` fields may hold ``None`` (tracked in a separate mask, since
    the reference checks distinguish ``None`` from any integer value, -1
    included).

    ``limit`` bounds the accepted magnitude (values must lie strictly inside
    ``(-limit, limit)``).  The default :data:`INT_LIMIT` keeps segment *sums*
    of the column inside int64; fields that only ever sit in equality
    comparisons or ``± 1`` arithmetic (identifiers, positions) may relax it to
    :data:`ID_LIMIT`, matching the bound on network identifiers.

    ``getter`` overrides plain attribute access for *derived* fields: nested
    dataclass attributes (``certificate.spanning_tree.total``), fixed-width
    slots of a variable-length tuple, or computed flags.  A getter returns the
    field value, ``None`` (optional fields), or :data:`UNREPRESENTABLE` to
    route every node that can see this certificate through the reference
    fallback.  Getters must be total — raising is a kernel bug, not a
    fallback signal.
    """

    name: str
    optional: bool = False
    limit: int = INT_LIMIT
    getter: Callable[[Any], Any] | None = None


@dataclass
class VectorContext:
    """Certificate-independent arrays of one network (read-only once built).

    ``dst[indptr[i]:indptr[i + 1]]`` are the neighbor indices of node ``i``
    (repr-sorted CSR layout) and ``src`` is the parallel source-index array,
    so per-directed-edge gathers are ``column[src]`` / ``column[dst]`` and
    per-node reductions are ``reduceat`` over ``starts = indptr[:-1]``.
    Connected networks with ``n >= 2`` have no empty adjacency block, which is
    exactly the precondition ``reduceat`` needs; :func:`build_vector_context`
    refuses smaller networks.

    Deliberately holds no reference back to the network: the engine caches
    contexts keyed by network identity and relies on garbage collection of
    the network to evict them.
    """

    n: int
    labels: list
    node_ids: Any
    indptr: Any
    starts: Any
    src: Any
    dst: Any
    degrees: Any
    _id_index: Any = None
    _edge_index: Any = None

    def id_index(self) -> tuple:
        """Return ``(order, sorted_ids)`` for identifier→node-index lookups.

        Certificate-independent, so it is computed once per context (the
        engine caches contexts per network) rather than per trial.
        """
        cached = self._id_index
        if cached is None:
            order = np.argsort(self.node_ids, kind="stable")
            cached = (order, self.node_ids[order])
            self._id_index = cached
        return cached

    def edge_index(self) -> tuple:
        """Return ``(order, sorted_keys)`` over the ``src * n + dst`` keys,
        for locating a directed edge's CSR position by endpoint pair (also
        certificate-independent, cached on the context)."""
        cached = self._edge_index
        if cached is None:
            keys = self.src * self.n + self.dst
            order = np.argsort(keys, kind="stable")
            cached = (order, keys[order])
            self._edge_index = cached
        return cached

    def resolve_ids(self, viewers: Any, queries: Any) -> tuple:
        """Resolve identifier ``queries`` to node indices: ``(nodes, found)``.

        ``viewers`` carries the querying node per entry; a single-network
        context resolves against its global id table regardless, but the
        :class:`BatchedContext` override restricts each lookup to the
        viewer's own network — kernels written against this method work on
        both context kinds unchanged.  Positions are clamped into range so
        callers can gather parallel arrays unconditionally.
        """
        order, sorted_ids = self.id_index()
        positions = np.minimum(np.searchsorted(sorted_ids, queries),
                               len(sorted_ids) - 1)
        return order[positions], sorted_ids[positions] == queries


def build_vector_context(network: "Network") -> VectorContext | None:
    """Compile ``network`` into a :class:`VectorContext`.

    Returns ``None`` when the vectorized backend cannot serve this network —
    numpy missing, fewer than two nodes or any isolated node (``reduceat``
    needs every adjacency block non-empty; a network is born connected but
    its graph may be mutated afterwards), or identifiers too large to
    represent exactly — in which case the engine stays on the reference
    path.
    """
    if not HAVE_NUMPY:
        return None
    with current_tracer().span("compile") as sp:
        ctx = _build_vector_context(network)
        if sp:
            sp.set(stage="context", nodes=network.size, refused=ctx is None)
        return ctx


def _build_vector_context(network: "Network") -> VectorContext | None:
    indexed = network.graph.indexed()
    n = indexed.n
    if n < 2 or min(indexed.degrees) == 0:
        return None
    ids = [network.id_of(label) for label in indexed.labels]
    if max(ids) >= ID_LIMIT:
        return None
    indptr, indices = indexed.csr_arrays()
    degrees = np.diff(indptr)
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    return VectorContext(
        n=n,
        labels=list(indexed.labels),
        node_ids=np.array(ids, dtype=np.int64),
        indptr=indptr,
        starts=indptr[:-1],
        src=src,
        dst=indices,
        degrees=degrees,
    )


@dataclass
class BatchedContext:
    """Many networks concatenated into one super-CSR (read-only once built).

    The arrays have exactly the :class:`VectorContext` shape — node indices
    are *global* (network ``k``'s nodes occupy the block
    ``node_offsets[k]:node_offsets[k + 1]``), ``src`` / ``dst`` are global
    directed-edge endpoints, and ``labels[i]`` is the composite key
    ``(item_index, label)`` — so the segment toolkit and every kernel written
    against per-node/per-edge gathers and segment reductions runs on a batch
    unchanged: no segment ever spans two networks, and the composite
    ``viewer * 2**32 + index`` keys the kernels build stay collision-free
    because :func:`build_batched_context` bounds the total node count by
    ``2**31``.  Only identifier resolution is network-local, which is what
    the :meth:`resolve_ids` override restores.

    ``network_of[i]`` is the item index of node ``i``; ``accept[
    node_offsets[k]:node_offsets[k + 1]]`` slices a batched accept vector
    back into item ``k``'s per-node decisions.
    """

    n: int
    items: int
    labels: list
    node_ids: Any
    indptr: Any
    starts: Any
    src: Any
    dst: Any
    degrees: Any
    network_of: Any
    node_offsets: Any
    _id_index: Any = None
    _edge_index: Any = None

    def id_index(self) -> tuple:
        """``(order, sorted_ids)`` sorted by the (network, identifier) key,
        so each network's block of :attr:`node_offsets` is internally
        id-sorted — the layout :meth:`resolve_ids` bisects."""
        cached = self._id_index
        if cached is None:
            order = np.lexsort((self.node_ids, self.network_of))
            cached = (order, self.node_ids[order])
            self._id_index = cached
        return cached

    def edge_index(self) -> tuple:
        """Same contract as :meth:`VectorContext.edge_index`; the
        ``src * n + dst`` keys stay unique because the endpoints are global
        node indices."""
        cached = self._edge_index
        if cached is None:
            keys = self.src * self.n + self.dst
            order = np.argsort(keys, kind="stable")
            cached = (order, keys[order])
            self._edge_index = cached
        return cached

    def resolve_ids(self, viewers: Any, queries: Any) -> tuple:
        """Resolve ``queries`` inside each viewer's own network's id block.

        A vectorized lower-bound bisection over the per-network slices of
        :meth:`id_index` (identifiers can reach ``2**62``, so a composite
        ``network * stride + id`` search key cannot fit int64); every block
        is non-empty, and the loop runs ``log2(max block size)`` rounds over
        the whole query set at once.
        """
        order, sorted_ids = self.id_index()
        net = self.network_of[viewers]
        lo = self.node_offsets[net].copy()
        end = self.node_offsets[net + 1]
        hi = end.copy()
        top = self.n - 1
        while True:
            active = lo < hi
            if not active.any():
                break
            mid = (lo + hi) >> 1
            go_right = active & (sorted_ids[np.minimum(mid, top)] < queries)
            lo = np.where(go_right, mid + 1, lo)
            hi = np.where(active & ~go_right, mid, hi)
        clamped = np.minimum(lo, top)
        found = (lo < end) & (sorted_ids[clamped] == queries)
        return order[clamped], found


def build_batched_context(contexts: list) -> BatchedContext | None:
    """Concatenate per-network :class:`VectorContext` objects into a batch.

    Returns ``None`` when the batch cannot keep the kernels' composite-key
    arithmetic collision-free — more than ``2**31`` total nodes (the caller
    splits such sweeps into several batches) — or when numpy is missing.
    The inputs are not copied lazily: every array is concatenated once here,
    and the result is cached by the engine keyed on the item networks.
    """
    if not HAVE_NUMPY or not contexts:
        return None
    sizes = [ctx.n for ctx in contexts]
    total = sum(sizes)
    if total >= INT_LIMIT:
        return None
    with current_tracer().span("batch_build/concat") as sp:
        if sp:
            sp.set(items=len(contexts), nodes=total)
        return _build_batched_context(contexts, sizes, total)


def _build_batched_context(contexts: list, sizes: list[int],
                           total: int) -> BatchedContext:
    node_offsets = np.zeros(len(contexts) + 1, dtype=np.int64)
    np.cumsum(np.array(sizes, dtype=np.int64), out=node_offsets[1:])
    labels: list = []
    for k, ctx in enumerate(contexts):
        labels.extend((k, label) for label in ctx.labels)
    indptr = np.concatenate(
        [np.zeros(1, dtype=np.int64)]
        + [ctx.indptr[1:] + edge_offset for ctx, edge_offset in
           zip(contexts, np.cumsum([0] + [len(ctx.dst) for ctx in contexts[:-1]]))])
    return BatchedContext(
        n=total,
        items=len(contexts),
        labels=labels,
        node_ids=np.concatenate([ctx.node_ids for ctx in contexts]),
        indptr=indptr,
        starts=indptr[:-1],
        src=np.concatenate([ctx.src + off for ctx, off in
                            zip(contexts, node_offsets[:-1])]),
        dst=np.concatenate([ctx.dst + off for ctx, off in
                            zip(contexts, node_offsets[:-1])]),
        degrees=np.concatenate([ctx.degrees for ctx in contexts]),
        network_of=np.repeat(np.arange(len(contexts), dtype=np.int64),
                             node_offsets[1:] - node_offsets[:-1]),
        node_offsets=node_offsets,
    )


@dataclass
class CertificateTable:
    """One certificate assignment in struct-of-arrays form.

    ``present[i]`` — node ``i`` holds a representable certificate of the
    kernel's class; ``unrepresentable[i]`` — it holds something else than
    ``None`` that the table cannot express exactly (wrong or subclassed type,
    non-integer or out-of-range field), so every node that sees it must take
    the reference path.  ``columns[f]`` holds the int64 field values (0 where
    not present or ``None``) and ``isnone[f]`` the ``None`` mask of optional
    fields.
    """

    present: Any
    unrepresentable: Any
    columns: dict[str, Any]
    isnone: dict[str, Any]


_MISSING = object()

#: in-row encoding of an optional field holding ``None``; sits outside the
#: accepted range of every field limit (values are strictly below
#: :data:`ID_LIMIT`), so it can never collide with a representable value
NONE_SENTINEL = ID_LIMIT


def _fields_key(fields: tuple[FieldSpec, ...]) -> str:
    return ",".join(spec.name + ("?" if spec.optional else "")
                    + ("" if spec.limit == INT_LIMIT else f"<{spec.limit}")
                    for spec in fields)


def node_row_key(certificate_type: type,
                 fields: tuple[FieldSpec, ...]) -> str:
    """Memo-key under which a certificate's extracted field row is cached.

    Keyed by certificate type and field layout, not ``id(fields)``: equal
    (type, layout) pairs share rows safely, a recycled tuple address can
    never alias a stale entry, and a kernel expecting a different class
    with a coincidentally equal layout never inherits another kernel's
    type-check verdict.  Getters cannot be part of the key, so a layout's
    (name, optional, limit) triples must determine its getters — use fresh
    field names when a derived field changes meaning.  The incremental
    table patchers (:mod:`repro.dynamic.tables`) share this key so a
    delta recompile sees exactly the rows a from-scratch compile would.
    """
    return (f"_vectorized_row_{certificate_type.__qualname__}_"
            + _fields_key(fields))


def list_rows_key(certificate_type: type, list_name: str,
                  entry_types: tuple[type, ...],
                  fields: tuple[FieldSpec, ...],
                  sublist: str | None = None,
                  sublist_fields: tuple[FieldSpec, ...] = (),
                  sublist_max_len: int | None = None) -> str:
    """Memo-key for a certificate's pre-flattened edge-list rows.

    Carries the entry types and the sublist spec as well: the same list
    compiled under a narrower entry-type tuple (or without the nested
    sub-rows) must not inherit these rows.  Shared with the incremental
    patchers for the same reason as :func:`node_row_key`.
    """
    key = (f"_vectorized_flatlist_{certificate_type.__qualname__}_{list_name}_"
           + "|".join(t.__qualname__ for t in entry_types) + "_"
           + _fields_key(fields))
    if sublist is not None:
        key += (f"_{sublist}<={sublist_max_len}_"
                + ",".join(spec.name
                           + ("" if spec.limit == INT_LIMIT else f"<{spec.limit}")
                           for spec in sublist_fields))
    return key


def _extract_row(certificate: Any, certificate_type: type,
                 fields: tuple[FieldSpec, ...]) -> tuple | None:
    """Return the exact field tuple of ``certificate``, or ``None`` if it has
    no exact int64 representation (subclasses included — their overridden
    attributes must keep reference semantics, which only the reference
    verifier can guarantee).  ``None`` field values are encoded as
    :data:`NONE_SENTINEL`."""
    if type(certificate) is not certificate_type:
        return None
    return _field_row(certificate, fields)


def _field_row(obj: Any, fields: tuple[FieldSpec, ...]) -> tuple | None:
    """Extract the exact int64 field tuple of an already-type-checked object."""
    values: list[int] = []
    for spec in fields:
        if spec.getter is None:
            value = getattr(obj, spec.name)
        else:
            value = spec.getter(obj)
            if value is UNREPRESENTABLE:
                return None
        if value is None and spec.optional:
            values.append(NONE_SENTINEL)
            continue
        # exactly int or bool — an int *subclass* may override comparison
        # semantics the int64 columns cannot reproduce, so it must take the
        # reference fallback like any other foreign object
        if type(value) is not int and type(value) is not bool:
            return None
        if not -spec.limit < value < spec.limit:
            return None
        values.append(int(value))  # normalises bool, which compares like int
    return tuple(values)


def compile_certificates(ctx: VectorContext, certificates: dict[Any, Any],
                         certificate_type: type,
                         fields: tuple[FieldSpec, ...]) -> CertificateTable:
    """Compile ``certificates`` into a :class:`CertificateTable` over ``ctx``.

    This is the per-trial cost of the vectorized backend, so extraction is
    memoised per certificate *object*, in the object's ``__dict__`` (the same
    idiom as the planarity certificates' ``endpoint_ids`` cache: certificates
    are immutable, the entry does not participate in dataclass equality, and
    it survives across trials — attack assignments recycle a small pool of
    honest certificates, so steady-state compilation is one dict hit per node
    plus a single bulk array conversion).

    A ``certificates`` mapping carrying a ``precompiled_tables`` attribute
    (see :class:`~repro.distributed.shm.PrecompiledAssignment`) short-circuits
    compilation entirely: the table compiled by the exporting process is
    returned as-is.  The attribute is keyed by the same
    :func:`node_row_key` the memoisation uses, so a precompiled table is by
    construction the one this call would have built — provided the caller
    pairs the assignment with the network it was compiled against, which is
    the shared-assignment handle's contract.
    """
    precompiled = getattr(certificates, "precompiled_tables", None)
    if precompiled is not None:
        table = precompiled.get(node_row_key(certificate_type, fields))
        if table is not None:
            return table
    with current_tracer().span("compile/certificates") as sp:
        if sp:
            sp.set(stage="certificates", nodes=int(ctx.n),
                   certificate_type=certificate_type.__name__)
        return _compile_certificates(ctx, certificates, certificate_type,
                                     fields)


def _compile_certificates(ctx: VectorContext, certificates: dict[Any, Any],
                          certificate_type: type,
                          fields: tuple[FieldSpec, ...]) -> CertificateTable:
    n = ctx.n
    width = len(fields)
    empty_row = (0,) * width
    row_key = node_row_key(certificate_type, fields)
    present = bytearray(n)
    unrepresentable = bytearray(n)
    get = certificates.get
    labels = ctx.labels
    tracer = current_tracer()
    # streamed: the Python-object staging list only ever holds one chunk of
    # rows — at n = 10^6 an unchunked flat list of per-field int objects
    # (n * width of them) dominated peak RSS; the compiled matrix itself is
    # a single dense int64 allocation either way
    matrix = np.empty((n, width), dtype=np.int64)
    for start in range(0, n, COMPILE_CHUNK):
        stop = min(start + COMPILE_CHUNK, n)
        with tracer.span("compile/chunk") as sp:
            if sp:
                sp.set(stage="certificates", start=start, stop=stop)
            flat: list[int] = []
            extend = flat.extend
            for i in range(start, stop):
                certificate = get(labels[i])
                if certificate is None:
                    extend(empty_row)
                    continue
                try:
                    row = certificate.__dict__.get(row_key, _MISSING)
                except AttributeError:  # no __dict__ (e.g. slotted foreign object)
                    row = _extract_row(certificate, certificate_type, fields)
                else:
                    if row is _MISSING:
                        row = _extract_row(certificate, certificate_type, fields)
                        certificate.__dict__[row_key] = row
                if row is None:
                    unrepresentable[i] = True
                    extend(empty_row)
                    continue
                present[i] = True
                extend(row)
            matrix[start:stop] = np.array(flat, dtype=np.int64).reshape(
                stop - start, width)
    columns: dict[str, Any] = {}
    isnone: dict[str, Any] = {}
    for j, spec in enumerate(fields):
        column = matrix[:, j]
        if spec.optional:
            mask = column == NONE_SENTINEL
            column[mask] = 0
            isnone[spec.name] = mask
        columns[spec.name] = column
    return CertificateTable(
        present=np.frombuffer(present, dtype=np.uint8).astype(bool),
        unrepresentable=np.frombuffer(unrepresentable, dtype=np.uint8).astype(bool),
        columns=columns, isnone=isnone)


@dataclass
class IntervalTable:
    """A variable-width *sub-list* of an :class:`EdgeListTable` entry.

    Second level of the offsets+values idiom: entry ``e`` of the parent
    edge-list table owns the block ``offsets[e]:offsets[e + 1]`` of every
    column here.  This is the layout that lets interval *values* (the Lemma 2
    ``(index, low, high)`` triples of the planarity edge certificates) enter
    the columns instead of forcing the holder onto the reference fallback:
    each sub-record is a plain tuple whose positional fields are declared by
    the ``sublist_fields`` of :func:`compile_edge_lists` — no optional
    slots, every value an exact int within the field's magnitude limit,
    anything else marks the *holder* unrepresentable.
    """

    offsets: Any
    counts: Any
    columns: dict[str, Any]


@dataclass
class EdgeListTable:
    """A variable-width per-node list field in flattened offsets+values form.

    This is the struct-of-arrays layout for certificates that carry a
    *sequence* of sub-records (the planarity scheme's per-edge certificates):
    node ``i``'s entries occupy the block ``offsets[i]:offsets[i + 1]`` of
    every entry column — the same offsets+values idiom as the CSR adjacency
    exposed by :meth:`IndexedGraph.csr_arrays()
    <repro.graphs.indexed.IndexedGraph.csr_arrays>`, so per-entry→per-node
    reductions run over ``offsets`` exactly like per-edge→per-node reductions
    run over ``indptr`` (empty blocks are legal here, so reductions must use
    the masked-scatter helpers, not bare ``reduceat``).

    ``unrepresentable[i]`` marks holders whose list the layout cannot express
    exactly (not the declared sequence type, or an entry of a foreign/
    subclassed type or with out-of-range fields); their blocks are empty and
    every node that can see them must take the reference path.  Holders whose
    *certificate* is absent or foreign get an empty block too, but are not
    flagged here — the node-level :class:`CertificateTable` already accounts
    for them.

    ``uids`` (with ``assign_uids=True``) holds a per-entry *content
    identity*: two entries share a uid exactly when they are equal as
    dataclasses.  This only holds when the declared ``fields`` (plus the
    sublist) cover every dataclass field of every entry type — the caller's
    obligation — and it is what lets a kernel run the reference verifier's
    ``existing != certificate`` conflict checks as integer comparisons.

    ``sub`` (with ``sublist=...``) carries the nested
    :class:`IntervalTable` of each entry's variable-width tuple field.
    """

    offsets: Any
    counts: Any
    columns: dict[str, Any]
    isnone: dict[str, Any]
    unrepresentable: Any
    uids: Any = None
    sub: IntervalTable | None = None


def compile_edge_lists(ctx: VectorContext, certificates: dict[Any, Any],
                       certificate_type: type, list_name: str,
                       entry_types: tuple[type, ...],
                       fields: tuple[FieldSpec, ...],
                       sublist: str | None = None,
                       sublist_fields: tuple[FieldSpec, ...] = (),
                       sublist_max_len: int | None = None,
                       assign_uids: bool = False) -> EdgeListTable:
    """Compile the ``list_name`` sequence attribute into an :class:`EdgeListTable`.

    Every entry must be exactly one of ``entry_types`` (subclasses fall back,
    like everywhere else in the exactness contract) and yield an exact row
    under ``fields`` (whose getters receive the *entry*); otherwise the whole
    holder is marked unrepresentable.  Extraction is memoised per certificate
    object in its ``__dict__``, like :func:`compile_certificates`.

    ``sublist`` names a variable-width tuple attribute of each entry (the
    planarity edge certificates' ``intervals``), compiled into a nested
    :class:`IntervalTable` on ``table.sub``: every item must be a plain tuple
    of exactly ``len(sublist_fields)`` ints, each within its field's
    magnitude limit, and the tuple at most ``sublist_max_len`` long —
    anything else marks the holder unrepresentable (the reference verifier
    either raises on such a shape or compares it where int64 columns could
    not reproduce the comparison, so the viewers must take the reference
    path either way).

    ``assign_uids=True`` labels each entry with a per-call content identity
    on ``table.uids`` (equal uid ⟺ equal extracted content).  For the uid to
    coincide with dataclass equality, ``fields`` plus the sublist must cover
    every dataclass field of every entry type.

    As with :func:`compile_certificates`, a ``certificates`` mapping with a
    ``precompiled_tables`` attribute short-circuits to the table compiled by
    the exporting process (keyed by :func:`list_rows_key`, suffixed
    ``"|uids"`` when ``assign_uids`` is requested, since the memo key does
    not otherwise record it).
    """
    precompiled = getattr(certificates, "precompiled_tables", None)
    if precompiled is not None:
        key = list_rows_key(certificate_type, list_name, entry_types, fields,
                            sublist, sublist_fields, sublist_max_len)
        table = precompiled.get((key + "|uids") if assign_uids else key)
        if table is not None:
            return table
    with current_tracer().span("compile/edge_lists") as sp:
        if sp:
            sp.set(stage="edge_lists", nodes=int(ctx.n), list=list_name,
                   certificate_type=certificate_type.__name__)
        return _compile_edge_lists(ctx, certificates, certificate_type,
                                   list_name, entry_types, fields, sublist,
                                   sublist_fields, sublist_max_len,
                                   assign_uids)


def _compile_edge_lists(ctx: VectorContext, certificates: dict[Any, Any],
                        certificate_type: type, list_name: str,
                        entry_types: tuple[type, ...],
                        fields: tuple[FieldSpec, ...],
                        sublist: str | None = None,
                        sublist_fields: tuple[FieldSpec, ...] = (),
                        sublist_max_len: int | None = None,
                        assign_uids: bool = False) -> EdgeListTable:
    n = ctx.n
    rows_key = list_rows_key(certificate_type, list_name, entry_types, fields,
                             sublist, sublist_fields, sublist_max_len)
    unrepresentable = bytearray(n)
    counts = [0] * n
    # streamed like _compile_certificates: the variable-width value stream
    # is staged in per-chunk Python lists, flushed to int64 blocks every
    # COMPILE_CHUNK nodes, and concatenated once at the end — total entries
    # are unknown up front, so blocks replace the preallocated matrix
    flat_blocks: list[Any] = []
    sub_count_blocks: list[Any] = []
    sub_blocks: list[Any] = []
    uid_blocks: list[Any] = []
    uid_of: dict[Any, int] = {}
    uid_setdefault = uid_of.setdefault
    get = certificates.get
    labels = ctx.labels
    tracer = current_tracer()
    for chunk_start in range(0, n, COMPILE_CHUNK):
        chunk_stop = min(chunk_start + COMPILE_CHUNK, n)
        with tracer.span("compile/chunk") as sp:
            if sp:
                sp.set(stage="edge_lists", start=chunk_start, stop=chunk_stop)
            flat: list[int] = []
            extend = flat.extend
            sub_counts: list[int] = []
            sub_counts_extend = sub_counts.extend
            sub_flat: list[int] = []
            sub_extend = sub_flat.extend
            uids: list[int] = []
            uids_append = uids.append
            for i in range(chunk_start, chunk_stop):
                certificate = get(labels[i])
                if type(certificate) is not certificate_type:
                    continue  # absent/foreign holder: the node table owns the verdict
                try:
                    rows = certificate.__dict__.get(rows_key, _MISSING)
                except AttributeError:  # pragma: no cover - frozen dataclasses have __dict__
                    rows = _extract_list_rows(certificate, list_name, entry_types,
                                              fields, sublist, sublist_fields,
                                              sublist_max_len)
                else:
                    if rows is _MISSING:
                        rows = _extract_list_rows(certificate, list_name,
                                                  entry_types, fields, sublist,
                                                  sublist_fields, sublist_max_len)
                        certificate.__dict__[rows_key] = rows
                if rows is None:
                    unrepresentable[i] = True
                    continue
                # the memoised payload is pre-flattened (see _extract_list_rows),
                # so per-trial assembly is a handful of extends per certificate —
                # this loop is the per-trial cost of the backend on
                # certificate-heavy schemes, and a per-row loop here dominated
                # whole-kernel profiles
                count, flat_fields, entry_sub_counts, flat_subs, contents = rows
                counts[i] = count
                extend(flat_fields)
                if sublist is not None:
                    sub_counts_extend(entry_sub_counts)
                    sub_extend(flat_subs)
                if assign_uids:
                    for content in contents:
                        uids_append(uid_setdefault(content, len(uid_of)))
            if flat:
                flat_blocks.append(np.array(flat, dtype=np.int64))
            if sub_counts:
                sub_count_blocks.append(np.array(sub_counts, dtype=np.int64))
            if sub_flat:
                sub_blocks.append(np.array(sub_flat, dtype=np.int64))
            if uids:
                uid_blocks.append(np.array(uids, dtype=np.int64))
    width = len(fields)
    flat_arr = _concat_blocks(flat_blocks)
    matrix = flat_arr.reshape(len(flat_arr) // width if width else 0, width)
    counts_arr = np.array(counts, dtype=np.int64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts_arr, out=offsets[1:])
    columns: dict[str, Any] = {}
    isnone: dict[str, Any] = {}
    for j, spec in enumerate(fields):
        column = matrix[:, j]
        if spec.optional:
            mask = column == NONE_SENTINEL
            column[mask] = 0
            isnone[spec.name] = mask
        columns[spec.name] = column
    sub_table = None
    if sublist is not None:
        sub_width = len(sublist_fields)
        sub_flat_arr = _concat_blocks(sub_blocks)
        sub_matrix = sub_flat_arr.reshape(
            len(sub_flat_arr) // sub_width if sub_width else 0, sub_width)
        sub_counts_arr = _concat_blocks(sub_count_blocks)
        sub_offsets = np.zeros(len(sub_counts_arr) + 1, dtype=np.int64)
        np.cumsum(sub_counts_arr, out=sub_offsets[1:])
        sub_table = IntervalTable(
            offsets=sub_offsets, counts=sub_counts_arr,
            columns={spec.name: sub_matrix[:, j]
                     for j, spec in enumerate(sublist_fields)})
    return EdgeListTable(
        offsets=offsets, counts=counts_arr, columns=columns, isnone=isnone,
        unrepresentable=np.frombuffer(unrepresentable, dtype=np.uint8).astype(bool),
        uids=_concat_blocks(uid_blocks) if assign_uids else None,
        sub=sub_table)


def _concat_blocks(blocks: list) -> Any:
    """Concatenate per-chunk int64 blocks (empty list -> empty array)."""
    if not blocks:
        return np.empty(0, dtype=np.int64)
    if len(blocks) == 1:
        return blocks[0]
    return np.concatenate(blocks)


def _extract_list_rows(certificate: Any, list_name: str,
                       entry_types: tuple[type, ...],
                       fields: tuple[FieldSpec, ...],
                       sublist: str | None = None,
                       sublist_fields: tuple[FieldSpec, ...] = (),
                       sublist_max_len: int | None = None) -> tuple | None:
    """Exact, pre-flattened rows of ``certificate.<list_name>``, or ``None``.

    The memoised payload is the assembly-ready 5-tuple
    ``(entry_count, flat_field_values, per_entry_sub_counts,
    flat_sub_values, per_entry_contents)`` — flattening happens once per
    certificate object here, so :func:`compile_edge_lists` only concatenates
    per trial.  ``per_entry_contents`` holds one hashable content tuple per
    entry (the field row, paired with the sub-rows when a sublist is
    declared) and is what the uid assignment interns.
    """
    entries = getattr(certificate, list_name)
    if type(entries) is not tuple:
        return None
    flat_fields: list[int] = []
    entry_sub_counts: list[int] = []
    flat_subs: list[int] = []
    contents: list[Any] = []
    for entry in entries:
        if type(entry) not in entry_types:
            return None
        row = _field_row(entry, fields)
        if row is None:
            return None
        flat_fields.extend(row)
        if sublist is None:
            contents.append(row)
            continue
        sub_rows = _sublist_rows(getattr(entry, sublist), sublist_fields,
                                 sublist_max_len)
        if sub_rows is None:
            return None
        entry_sub_counts.append(len(sub_rows))
        for sub_row in sub_rows:
            flat_subs.extend(sub_row)
        contents.append((row, sub_rows))
    return (len(entries), tuple(flat_fields), tuple(entry_sub_counts),
            tuple(flat_subs), tuple(contents))


def _sublist_rows(items: Any, fields: tuple[FieldSpec, ...],
                  max_len: int | None) -> tuple | None:
    """Exact rows of a tuple-of-tuples sub-list, or ``None`` if unrepresentable."""
    if type(items) is not tuple or (max_len is not None and len(items) > max_len):
        return None
    width = len(fields)
    rows = []
    for item in items:
        if type(item) is not tuple or len(item) != width:
            return None
        row = []
        for value, spec in zip(item, fields):
            if type(value) is not int and type(value) is not bool:
                return None
            if not -spec.limit < value < spec.limit:
                return None
            row.append(int(value))
        rows.append(tuple(row))
    return tuple(rows)
