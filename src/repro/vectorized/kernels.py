"""Array kernels for the radius-1 building-block verifiers.

Each kernel re-expresses one scheme's per-node verifier as whole-array
operations over a :class:`~repro.vectorized.compiler.VectorContext`: field
gathers along the CSR directed-edge arrays (``column[src]`` / ``column[dst]``)
followed by per-node segment reductions (``reduceat`` over the CSR block
starts).  The per-node decision logic is a literal transcription of the
reference checks in :mod:`repro.core.building_blocks` — every conjunct there
appears as one boolean array here — so the accept vector is bit-identical to
running the Python verifier at every node (asserted by the differential fuzz
harness in ``tests/test_vectorized.py``).

Two shared sub-checks are exposed as standalone functions because they are
the certification ingredients the paper's planarity scheme builds on:

* :func:`spanning_tree_accept` — the (root, parent, distance) consistency
  plus the subtree-counter check of ``check_spanning_tree_label``;
* :func:`hamiltonian_path_accept` — the rank/parent consistency of
  ``check_hamiltonian_path_label``.

:class:`TreeKernel` and :class:`PathGraphKernel` layer the schemes' extra
every-edge conditions on top.  The paper's headline schemes build on the
same sub-checks through nested-field compilation — see
:mod:`repro.vectorized.paper_kernels` for the non-planarity and planarity
kernels (both full: the planarity kernel compiles Algorithm 2's
certificate-set-shaped reconstruction phases to per-node segmented sorts —
composite-key ``argsort`` passes, the bounded-key specialisation of
:func:`segment_sort` — aligned with :func:`segment_rank`).

A kernel returns ``(accept, fallback)``: ``fallback[i]`` marks nodes whose
radius-1 view contains an unrepresentable certificate (see the compiler's
exactness contract); the engine overwrites their entries with the reference
verifier's decision.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.core.building_blocks import (
    HamiltonianPathLabel,
    PathGraphScheme,
    SpanningTreeLabel,
    TreeScheme,
)
from repro.vectorized.compiler import (
    HAVE_NUMPY,
    ID_LIMIT,
    CertificateTable,
    FieldSpec,
    VectorContext,
    compile_certificates,
)

if HAVE_NUMPY:
    import numpy as np

__all__ = [
    "VectorizedKernel",
    "SPANNING_TREE_FIELDS",
    "HAMILTONIAN_PATH_FIELDS",
    "segment_sum",
    "segment_count",
    "segment_all",
    "segment_any",
    "segment_sort",
    "segment_rank",
    "scatter_any",
    "view_fallback",
    "spanning_tree_accept",
    "hamiltonian_path_accept",
    "TreeKernel",
    "PathGraphKernel",
    "builtin_kernels",
]

#: field layout of :class:`SpanningTreeLabel` consumed by the tree kernels;
#: ``root_id`` / ``parent_id`` hold network identifiers and only ever sit in
#: equality comparisons, so they relax the magnitude bound to
#: :data:`~repro.vectorized.compiler.ID_LIMIT` — with the default id space of
#: ``n**2`` the :data:`~repro.vectorized.compiler.INT_LIMIT` bound would send
#: every node of an n >= ~46000 network through the reference fallback
SPANNING_TREE_FIELDS = (
    FieldSpec("total"),
    FieldSpec("root_id", limit=ID_LIMIT),
    FieldSpec("parent_id", optional=True, limit=ID_LIMIT),
    FieldSpec("distance"),
    FieldSpec("subtree_size"),
)

#: field layout of :class:`HamiltonianPathLabel` consumed by the path kernel
HAMILTONIAN_PATH_FIELDS = (
    FieldSpec("total"),
    FieldSpec("rank"),
    FieldSpec("root_id", limit=ID_LIMIT),
    FieldSpec("parent_id", optional=True, limit=ID_LIMIT),
)


@runtime_checkable
class VectorizedKernel(Protocol):
    """Bulk verifier of one scheme over a compiled network.

    Implementations are stateless; schemes opt in by registering a kernel
    under their name (see
    :meth:`repro.distributed.registry.SchemeRegistry.register_kernel`).
    """

    #: registry name of the scheme this kernel accelerates
    scheme_name: str

    def supports(self, scheme: Any) -> bool:
        """Return whether this kernel reproduces ``scheme`` exactly.

        Must reject subclasses and any parametrisation that changes the
        verifier's decision function.
        """
        ...

    def accept_vector(self, ctx: VectorContext, scheme: Any,
                      certificates: dict[Any, Any]) -> tuple[Any, Any]:
        """Return ``(accept, fallback)`` boolean arrays over ``ctx``'s nodes."""
        ...


# ----------------------------------------------------------------------
# segment reductions over the CSR layout (the kernel-authoring toolkit —
# see docs/KERNELS.md)
# ----------------------------------------------------------------------
# ``starts = indptr[:-1]`` and every adjacency block is non-empty (the
# compiler refuses n < 2), which is the precondition np.add.reduceat needs:
# an empty segment would alias its successor's first element.  Reductions
# over layouts that *can* have empty blocks (the variable-width
# ``EdgeListTable``) must use :func:`scatter_any` instead.

def segment_sum(values: Any, starts: Any) -> Any:
    """Per-node sum of a per-directed-edge int64 array."""
    return np.add.reduceat(values, starts)


def segment_count(flags: Any, starts: Any) -> Any:
    """Per-node count of set flags over a per-directed-edge bool array."""
    return np.add.reduceat(flags.astype(np.int64), starts)


def segment_all(flags: Any, starts: Any) -> Any:
    """Per-node conjunction over a per-directed-edge bool array."""
    return segment_count(~flags, starts) == 0


def segment_any(flags: Any, starts: Any) -> Any:
    """Per-node disjunction over a per-directed-edge bool array."""
    return segment_count(flags, starts) > 0


def segment_sort(segments: Any, *keys: Any) -> Any:
    """Permutation sorting lexicographically by ``(segments, keys[0], ...)``.

    The general tool for per-node *set* checks: apply the returned index
    array to ``segments`` and every parallel value array, and each segment
    becomes a contiguous block whose elements are ordered by the keys —
    adjacent-element comparisons then implement per-segment dedup,
    uniqueness, and chain conditions without any Python loop.  When the sort
    key is a single value with a known bound (the planarity kernel's
    ``G_{T,f}`` indices are below ``2**32``), packing ``segment * bound +
    key`` into one int64 and using a plain ``np.argsort`` computes the same
    permutation faster — see docs/KERNELS.md.
    """
    return np.lexsort(tuple(reversed(keys)) + (segments,))


def segment_rank(sorted_segments: Any) -> Any:
    """0-based rank of every element within its segment run.

    ``sorted_segments`` must already be segment-contiguous (e.g. the segment
    array permuted by :func:`segment_sort`); the ranks restart at 0 at every
    segment boundary, which is what aligns the k-th sorted item of a segment
    with the k-th slot of a parallel per-segment structure.
    """
    count = len(sorted_segments)
    positions = np.arange(count, dtype=np.int64)
    if count == 0:
        return positions
    is_start = np.empty(count, dtype=bool)
    is_start[0] = True
    is_start[1:] = sorted_segments[1:] != sorted_segments[:-1]
    return positions - np.maximum.accumulate(np.where(is_start, positions, 0))


def scatter_any(flags: Any, index: Any, n: int) -> Any:
    """Per-target disjunction of ``flags`` scattered by ``index``.

    Unlike the ``reduceat``-based segment reductions this needs no contiguous
    block layout, so empty targets are legal (they come out ``False``) —
    which is exactly the shape of per-entry→per-node reductions over an
    :class:`~repro.vectorized.compiler.EdgeListTable`.
    """
    return np.bincount(index[flags], minlength=n).astype(bool)


def view_fallback(ctx: VectorContext, table: CertificateTable) -> Any:
    """Nodes whose radius-1 view contains an unrepresentable certificate."""
    bad = table.unrepresentable
    return bad | segment_any(bad[ctx.dst], ctx.starts)


# ----------------------------------------------------------------------
# shared sub-checks (the paper's certification building blocks)
# ----------------------------------------------------------------------
def spanning_tree_accept(ctx: VectorContext, table: CertificateTable) -> Any:
    """Vectorized ``check_spanning_tree_label`` at every node at once.

    ``table`` must be compiled with :data:`SPANNING_TREE_FIELDS`.  Mirrors the
    reference conjuncts: own label present; every neighbor label present with
    matching ``total`` / ``root_id``; the root (``own_id == root_id``) has no
    parent, distance 0 and ``subtree_size == total``; every other node has a
    neighboring parent one distance unit closer; and the subtree counter
    equals one plus the children's counters.
    """
    src, dst, starts = ctx.src, ctx.dst, ctx.starts
    ids = ctx.node_ids
    present = table.present
    total = table.columns["total"]
    root = table.columns["root_id"]
    parent = table.columns["parent_id"]
    parent_none = table.isnone["parent_id"]
    distance = table.columns["distance"]
    size = table.columns["subtree_size"]

    neighbor_ok = present[dst] & (total[dst] == total[src]) & (root[dst] == root[src])
    accept = present & segment_all(neighbor_ok, starts)

    is_root = ids == root
    root_ok = parent_none & (distance == 0) & (size == total)
    # the claimed parent must be a neighbor (ids are distinct, so at most one
    # edge matches) whose distance is exactly one less; ``parent_none`` rows
    # hold column value 0, which a genuine id 0 must not match, hence the mask
    parent_edge = ~parent_none[src] & (ids[dst] == parent[src])
    parent_ok = segment_any(
        parent_edge & present[dst] & (distance[dst] == distance[src] - 1), starts)
    accept &= np.where(is_root, root_ok, ~parent_none & parent_ok)

    child_edge = present[dst] & ~parent_none[dst] & (parent[dst] == ids[src])
    child_sum = segment_sum(np.where(child_edge, size[dst], 0), starts)
    accept &= size == 1 + child_sum
    return accept


def hamiltonian_path_accept(ctx: VectorContext, table: CertificateTable) -> Any:
    """Vectorized ``check_hamiltonian_path_label`` at every node at once.

    ``table`` must be compiled with :data:`HAMILTONIAN_PATH_FIELDS`.  The
    exactly-one-child condition uses the count/sum pair: when the child count
    is 1 the rank sum over child edges *is* the child's rank.
    """
    src, dst, starts = ctx.src, ctx.dst, ctx.starts
    ids = ctx.node_ids
    present = table.present
    total = table.columns["total"]
    rank = table.columns["rank"]
    root = table.columns["root_id"]
    parent = table.columns["parent_id"]
    parent_none = table.isnone["parent_id"]

    neighbor_ok = present[dst] & (total[dst] == total[src]) & (root[dst] == root[src])
    accept = present & (1 <= rank) & (rank <= total) & segment_all(neighbor_ok, starts)

    first = rank == 1
    first_ok = (ids == root) & parent_none
    parent_edge = ~parent_none[src] & (ids[dst] == parent[src])
    parent_ok = segment_any(
        parent_edge & present[dst] & (rank[dst] == rank[src] - 1), starts)
    accept &= np.where(first, first_ok, ~parent_none & parent_ok)

    child_edge = present[dst] & ~parent_none[dst] & (parent[dst] == ids[src])
    child_count = segment_count(child_edge, starts)
    child_rank_sum = segment_sum(np.where(child_edge, rank[dst], 0), starts)
    has_next = rank < total
    next_ok = (child_count == 1) & (child_rank_sum == rank + 1)
    accept &= np.where(has_next, next_ok, child_count == 0)
    return accept


# ----------------------------------------------------------------------
# scheme kernels
# ----------------------------------------------------------------------
class TreeKernel:
    """Bulk verifier of :class:`~repro.core.building_blocks.TreeScheme`."""

    scheme_name = TreeScheme.name
    coverage = "full"

    def supports(self, scheme: Any) -> bool:
        return type(scheme) is TreeScheme and scheme.verification_radius == 1

    def table_specs(self) -> list[dict]:
        """The compiles :meth:`accept_vector` performs, declaratively.

        Consumed by :func:`repro.distributed.shm.export_assignment` to
        pre-compile and share exactly the tables this kernel will ask for.
        """
        return [{"kind": "certificate",
                 "certificate_type": SpanningTreeLabel,
                 "fields": SPANNING_TREE_FIELDS}]

    def accept_vector(self, ctx: VectorContext, scheme: Any,
                      certificates: dict[Any, Any]) -> tuple[Any, Any]:
        table = compile_certificates(ctx, certificates, SpanningTreeLabel,
                                     SPANNING_TREE_FIELDS)
        accept = spanning_tree_accept(ctx, table)
        # every incident edge must be a tree edge: the neighbor is my parent
        # or claims me as its parent
        src, dst = ctx.src, ctx.dst
        ids = ctx.node_ids
        parent = table.columns["parent_id"]
        parent_none = table.isnone["parent_id"]
        tree_edge = (~parent_none[src] & (ids[dst] == parent[src])) \
            | (table.present[dst] & ~parent_none[dst] & (parent[dst] == ids[src]))
        accept &= segment_all(tree_edge, ctx.starts)
        return accept, view_fallback(ctx, table)


class PathGraphKernel:
    """Bulk verifier of :class:`~repro.core.building_blocks.PathGraphScheme`."""

    scheme_name = PathGraphScheme.name
    coverage = "full"

    def supports(self, scheme: Any) -> bool:
        return type(scheme) is PathGraphScheme and scheme.verification_radius == 1

    def accept_vector(self, ctx: VectorContext, scheme: Any,
                      certificates: dict[Any, Any]) -> tuple[Any, Any]:
        table = compile_certificates(ctx, certificates, HamiltonianPathLabel,
                                     HAMILTONIAN_PATH_FIELDS)
        accept = hamiltonian_path_accept(ctx, table)
        accept &= ctx.degrees <= 2
        # every incident edge must be a path edge: consecutive ranks only
        rank = table.columns["rank"]
        consecutive = np.abs(rank[ctx.dst] - rank[ctx.src]) == 1
        accept &= segment_all(consecutive, ctx.starts)
        return accept, view_fallback(ctx, table)


def builtin_kernels() -> list:
    """Return the kernels shipped with the library (empty without numpy)."""
    if not HAVE_NUMPY:
        return []
    # imported lazily: the paper and scheme kernels build on this module's
    # sub-checks
    from repro.vectorized.paper_kernels import NonPlanarityKernel, PlanarityKernel
    from repro.vectorized.scheme_kernels import (
        DMAMRoundKernel,
        PathOuterplanarKernel,
        UniversalMapKernel,
    )

    return [PathGraphKernel(), TreeKernel(), NonPlanarityKernel(),
            PlanarityKernel(), PathOuterplanarKernel(), UniversalMapKernel(),
            DMAMRoundKernel()]
