"""Vectorized bulk verification on the IndexedGraph CSR arrays.

The paper's verifiers are radius-1 local predicates, which maps directly onto
array kernels: compile the certificate assignment into struct-of-arrays form
(one numpy column per certificate field, indexed by
:class:`~repro.graphs.indexed.IndexedGraph` node id) and decide **all nodes
at once** with CSR gathers and segment reductions instead of a Python
per-node loop.

The subsystem has three layers (documented end to end in
``docs/ARCHITECTURE.md``; the kernel-authoring contract in
``docs/KERNELS.md``):

* :mod:`repro.vectorized.compiler` — network → :class:`VectorContext`
  (certificate-independent CSR/id arrays, cached per network by the engine)
  and assignment → :class:`CertificateTable` (per-field columns, rebuilt per
  trial) or :class:`EdgeListTable` (variable-width per-node lists flattened
  into offsets+values arrays), with an exactness contract that routes
  unrepresentable certificates back to the reference verifier; many-network
  *batches* concatenate into a :class:`BatchedContext` super-CSR
  (:func:`build_batched_context`) that every kernel runs on unchanged;
* :mod:`repro.vectorized.kernels` — the :class:`VectorizedKernel` protocol,
  the segment-reduction toolkit, the shared spanning-tree and
  Hamiltonian-path sub-checks, and the concrete kernels for ``tree-pls``
  and ``path-graph-pls``;
* :mod:`repro.vectorized.paper_kernels` — the headline schemes: full
  kernels for both ``non-planarity-pls`` and ``planarity-pls`` (every
  Algorithm 2 phase compiled to segmented array passes, fallback reserved
  for unrepresentable certificates);
* :mod:`repro.vectorized.scheme_kernels` — the remaining rows of the
  backend-support matrix: full kernels for ``path-outerplanarity-pls``
  (Algorithm 1) and ``universal-map-pls`` (map interning), and the *round*
  kernel for the interactive ``planarity-dmam`` verification round;
* registration — kernels are registered alongside their schemes in
  :func:`repro.distributed.registry.default_registry`; the
  :class:`~repro.distributed.engine.SimulationEngine` selects them with
  ``backend="vectorized"`` and falls back to the reference loop for schemes
  without a kernel (or when numpy is unavailable).

Everything degrades gracefully without numpy: :data:`HAVE_NUMPY` is the gate,
:func:`builtin_kernels` returns an empty list, and the engine's vectorized
backend silently serves the reference path.
"""

from repro.vectorized.compiler import (
    HAVE_NUMPY,
    ID_LIMIT,
    INT_LIMIT,
    UNREPRESENTABLE,
    BatchedContext,
    CertificateTable,
    EdgeListTable,
    FieldSpec,
    IntervalTable,
    VectorContext,
    build_batched_context,
    build_vector_context,
    compile_certificates,
    compile_edge_lists,
)
from repro.vectorized.kernels import (
    HAMILTONIAN_PATH_FIELDS,
    SPANNING_TREE_FIELDS,
    PathGraphKernel,
    TreeKernel,
    VectorizedKernel,
    builtin_kernels,
    hamiltonian_path_accept,
    scatter_any,
    segment_all,
    segment_any,
    segment_count,
    segment_rank,
    segment_sort,
    segment_sum,
    spanning_tree_accept,
    view_fallback,
)
from repro.vectorized.paper_kernels import (
    EDGE_CERTIFICATE_FIELDS,
    INTERVAL_ENTRY_FIELDS,
    NESTED_SPANNING_TREE_FIELDS,
    NONPLANARITY_FIELDS,
    PLANARITY_FIELDS,
    NonPlanarityKernel,
    PlanarityKernel,
)
from repro.vectorized.scheme_kernels import (
    DMAM_SECOND_FIELDS,
    PATH_OUTERPLANAR_FIELDS,
    CompiledPrepared,
    DMAMRoundKernel,
    PathOuterplanarKernel,
    UniversalMapKernel,
    mulmod_p61,
)

__all__ = [
    "HAVE_NUMPY",
    "ID_LIMIT",
    "INT_LIMIT",
    "UNREPRESENTABLE",
    "BatchedContext",
    "CertificateTable",
    "EdgeListTable",
    "FieldSpec",
    "IntervalTable",
    "VectorContext",
    "build_batched_context",
    "build_vector_context",
    "compile_certificates",
    "compile_edge_lists",
    "HAMILTONIAN_PATH_FIELDS",
    "SPANNING_TREE_FIELDS",
    "PathGraphKernel",
    "TreeKernel",
    "VectorizedKernel",
    "builtin_kernels",
    "hamiltonian_path_accept",
    "scatter_any",
    "segment_all",
    "segment_any",
    "segment_count",
    "segment_rank",
    "segment_sort",
    "segment_sum",
    "spanning_tree_accept",
    "view_fallback",
    "EDGE_CERTIFICATE_FIELDS",
    "INTERVAL_ENTRY_FIELDS",
    "NESTED_SPANNING_TREE_FIELDS",
    "NONPLANARITY_FIELDS",
    "PLANARITY_FIELDS",
    "NonPlanarityKernel",
    "PlanarityKernel",
    "DMAM_SECOND_FIELDS",
    "PATH_OUTERPLANAR_FIELDS",
    "CompiledPrepared",
    "DMAMRoundKernel",
    "PathOuterplanarKernel",
    "UniversalMapKernel",
    "mulmod_p61",
]
