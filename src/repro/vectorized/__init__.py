"""Vectorized bulk verification on the IndexedGraph CSR arrays.

The paper's verifiers are radius-1 local predicates, which maps directly onto
array kernels: compile the certificate assignment into struct-of-arrays form
(one numpy column per certificate field, indexed by
:class:`~repro.graphs.indexed.IndexedGraph` node id) and decide **all nodes
at once** with CSR gathers and segment reductions instead of a Python
per-node loop.

The subsystem has three layers:

* :mod:`repro.vectorized.compiler` — network → :class:`VectorContext`
  (certificate-independent CSR/id arrays, cached per network by the engine)
  and assignment → :class:`CertificateTable` (per-field columns, rebuilt per
  trial), with an exactness contract that routes unrepresentable
  certificates back to the reference verifier;
* :mod:`repro.vectorized.kernels` — the :class:`VectorizedKernel` protocol,
  the shared spanning-tree and Hamiltonian-path sub-checks, and the concrete
  kernels for ``tree-pls`` and ``path-graph-pls``;
* registration — kernels are registered alongside their schemes in
  :func:`repro.distributed.registry.default_registry`; the
  :class:`~repro.distributed.engine.SimulationEngine` selects them with
  ``backend="vectorized"`` and falls back to the reference loop for schemes
  without a kernel (or when numpy is unavailable).

Everything degrades gracefully without numpy: :data:`HAVE_NUMPY` is the gate,
:func:`builtin_kernels` returns an empty list, and the engine's vectorized
backend silently serves the reference path.
"""

from repro.vectorized.compiler import (
    HAVE_NUMPY,
    ID_LIMIT,
    INT_LIMIT,
    CertificateTable,
    FieldSpec,
    VectorContext,
    build_vector_context,
    compile_certificates,
)
from repro.vectorized.kernels import (
    HAMILTONIAN_PATH_FIELDS,
    SPANNING_TREE_FIELDS,
    PathGraphKernel,
    TreeKernel,
    VectorizedKernel,
    builtin_kernels,
    hamiltonian_path_accept,
    spanning_tree_accept,
)

__all__ = [
    "HAVE_NUMPY",
    "ID_LIMIT",
    "INT_LIMIT",
    "CertificateTable",
    "FieldSpec",
    "VectorContext",
    "build_vector_context",
    "compile_certificates",
    "HAMILTONIAN_PATH_FIELDS",
    "SPANNING_TREE_FIELDS",
    "PathGraphKernel",
    "TreeKernel",
    "VectorizedKernel",
    "builtin_kernels",
    "hamiltonian_path_accept",
    "spanning_tree_accept",
]
