"""Kernels closing the backend-support matrix: PO, universal map, and dMAM.

Three kernels that take the vectorized backend from four schemes to all
seven (see ``SchemeRegistry.kernel_coverage``):

* :class:`PathOuterplanarKernel` — Algorithm 1 (Lemma 2) as segment passes:
  the spanning-path part reuses :func:`~repro.vectorized.kernels
  .hamiltonian_path_accept` over the nested path fields, and the interval
  checks become per-viewer rank-sorted adjacent-pair comparisons plus a
  composite-key ``(viewer, rank) -> interval`` lookup table — the same
  ``viewer * 2**32 + index`` trick the planarity kernel uses for its
  ``G_{T,f}`` maps.
* :class:`UniversalMapKernel` — the whole-graph-map scheme has certificates
  whose *content* is shared by every node, so the kernel interns each
  distinct map once, turns the every-neighbor-has-the-same-map check into a
  uid comparison, and checks each distinct map's neighborhood table and
  planarity once per map instead of once per node (memoised on the
  certificate, so repeated trials in a sweep pay nothing).
* :class:`DMAMRoundKernel` — a *round* kernel for the interactive dMAM
  protocol: the challenge-independent verifier states
  (``prepare_verifier``) compile once per (network, first turn) into event
  and child-edge arrays, and every challenge draw is then one pass of
  Mersenne-prime modular products (:func:`mulmod_p61`) plus segment
  reductions — the shape of the soundness-estimation hot loop.

All three obey the exactness contract of :mod:`repro.vectorized.compiler`:
anything without an exact array representation routes every viewer through
the reference fallback, so decisions are bit-identical to the reference
verifiers (asserted by the differential fuzz harness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.baselines.dmam import (
    _REJECT,
    _SINGLE_NODE,
    FIELD_PRIME,
    DMAMSecondMessage,
    PlanarityDMAMProtocol,
)
from repro.baselines.universal import GraphMapCertificate, UniversalPlanarityScheme
from repro.core.building_blocks import HamiltonianPathLabel
from repro.core.po_scheme import PathOuterplanarLabel, PathOuterplanarScheme
from repro.graphs.planarity import is_planar
from repro.observability.tracer import current as current_tracer
from repro.vectorized.compiler import (
    HAVE_NUMPY,
    ID_LIMIT,
    UNREPRESENTABLE,
    FieldSpec,
    compile_certificates,
)
from repro.vectorized.kernels import (
    hamiltonian_path_accept,
    scatter_any,
    segment_all,
    segment_any,
    view_fallback,
)
from repro.vectorized.paper_kernels import (
    _INDEX_ENC,
    _INT64_MAX,
    _INT64_MIN,
    _concat_ranges,
    _enc_index,
    _sorted_lookup,
)

if HAVE_NUMPY:
    import numpy as np

__all__ = [
    "PATH_OUTERPLANAR_FIELDS",
    "DMAM_SECOND_FIELDS",
    "PathOuterplanarKernel",
    "UniversalMapKernel",
    "DMAMRoundKernel",
    "CompiledPrepared",
    "mulmod_p61",
]


# ----------------------------------------------------------------------
# path-outerplanarity (Lemma 2 / Algorithm 1)
# ----------------------------------------------------------------------
def _path_field(name: str):
    def get(certificate: Any) -> Any:
        path = certificate.path
        if type(path) is not HamiltonianPathLabel:
            return UNREPRESENTABLE
        return getattr(path, name)
    return get


def _interval_slot(slot: int):
    def get(certificate: Any) -> Any:
        interval = certificate.interval
        # the reference both unpacks ``a, b = interval`` (raising on other
        # shapes) and compares the *object* against result tuples, which the
        # int64 columns can only reproduce for plain 2-tuples
        if type(interval) is not tuple or len(interval) != 2:
            return UNREPRESENTABLE
        return interval[slot]
    return get


#: nested path fields (names match :data:`~repro.vectorized.kernels
#: .HAMILTONIAN_PATH_FIELDS` so :func:`hamiltonian_path_accept` applies)
#: plus the covering-interval endpoints
PATH_OUTERPLANAR_FIELDS = (
    FieldSpec("total", getter=_path_field("total")),
    FieldSpec("rank", getter=_path_field("rank")),
    FieldSpec("root_id", limit=ID_LIMIT, getter=_path_field("root_id")),
    FieldSpec("parent_id", optional=True, limit=ID_LIMIT,
              getter=_path_field("parent_id")),
    FieldSpec("interval_a", limit=ID_LIMIT, getter=_interval_slot(0)),
    FieldSpec("interval_b", limit=ID_LIMIT, getter=_interval_slot(1)),
)


class PathOuterplanarKernel:
    """Full kernel of :class:`~repro.core.po_scheme.PathOuterplanarScheme`.

    Algorithm 1 sorts each node's neighbors by certified rank and chains
    their intervals; in array form that is one composite-key sort of the
    directed-edge array — ``viewer * 2**32 + rank`` — after which every
    per-viewer condition is an adjacent-pair comparison (lines 6-9), an
    extreme-element lookup (lines 10-13), or a membership probe in the
    sorted ``(viewer, rank)`` key table (lines 14-17).

    Out-of-range ranks encode to the same key slot, so the sorted layout
    can misorder them — harmless, because the reference rejects any viewer
    with a neighbor rank outside ``(0, total]`` (line 4), which the kernel
    checks as its own conjunct: wherever the pair logic matters, ranks are
    clean.
    """

    scheme_name = PathOuterplanarScheme.name
    coverage = "full"

    def supports(self, scheme: Any) -> bool:
        return type(scheme) is PathOuterplanarScheme and scheme.verification_radius == 1

    def accept_vector(self, ctx: Any, scheme: Any,
                      certificates: dict[Any, Any]) -> tuple[Any, Any]:
        tracer = current_tracer()
        prefix = "kernel:" + self.scheme_name + "/"
        table = compile_certificates(ctx, certificates, PathOuterplanarLabel,
                                     PATH_OUTERPLANAR_FIELDS)
        n = ctx.n
        src, dst, starts = ctx.src, ctx.dst, ctx.starts
        rank = table.columns["rank"]
        total = table.columns["total"]
        ia = table.columns["interval_a"]
        ib = table.columns["interval_b"]
        rk_s, rk_d = rank[src], rank[dst]
        tot_s = total[src]

        with tracer.span(prefix + "spanning_path"):
            # part 1: the nested path labels form a spanning path
            accept = hamiltonian_path_accept(ctx, table)

            # line 4 prelude: every neighbor rank distinct from mine and in
            # range
            accept &= ~segment_any(
                (rk_d == rk_s) | (rk_d <= 0) | (rk_d > tot_s), starts)

        with tracer.span(prefix + "interval_chain"):
            # duplicate neighbor ranks collapse in the rank->interval dict,
            # which the verifier detects by the length mismatch
            key = src * _INDEX_ENC + _enc_index(rk_d)
            order = np.argsort(key)
            k_sorted = key[order]
            v_sorted = src[order]
            r_sorted = rk_d[order]
            a_sorted = ia[dst][order]
            b_sorted = ib[dst][order]
            m = len(dst)
            dup = np.zeros(m, dtype=bool)
            dup[1:] = k_sorted[1:] == k_sorted[:-1]
            accept &= ~scatter_any(dup, v_sorted, n)

            # path consistency: predecessor / successor rank among neighbors
            accept &= (rank <= 1) | segment_any(rk_d == rk_s - 1, starts)
            accept &= (rank >= total) | segment_any(rk_d == rk_s + 1, starts)

            # line 5: a < x < b and every neighbor inside [a, b]; the virtual
            # vertices 0 and total+1 join their side's check (their other
            # half is implied by a < rank < b)
            accept &= (ia < rank) & (rank < ib)
            accept &= segment_all((ia[src] <= rk_d) & (rk_d <= ib[src]),
                                  starts)
            accept &= (rank != 1) | (ia <= 0)
            accept &= (rank != total) | (total + 1 <= ib)

            # both sides non-empty (the virtual vertex covers its end of the
            # path)
            above = rk_d > rk_s
            below = rk_d < rk_s
            exists_above = segment_any(above, starts)
            exists_below = segment_any(below, starts)
            accept &= exists_above | (rank == total)
            accept &= exists_below | (rank == 1)

            # lines 6-9: consecutive same-side neighbors chain their
            # intervals; after the composite-key sort these are exactly the
            # same-viewer adjacent pairs.  The virtual vertices never pair: a
            # real neighbor on their side of the rank would be out of range.
            same = v_sorted[1:] == v_sorted[:-1]
            ctr = rank[v_sorted[1:]]
            pair_above = same & (r_sorted[:-1] > ctr)
            bad_up = pair_above & ~((a_sorted[:-1] == ctr)
                                    & (b_sorted[:-1] == r_sorted[1:]))
            pair_below = same & (r_sorted[1:] < ctr)
            bad_dn = pair_below & ~((a_sorted[1:] == r_sorted[:-1])
                                    & (b_sorted[1:] == ctr))
            bad_pairs = np.zeros(m, dtype=bool)
            bad_pairs[1:] = bad_up | bad_dn
            accept &= ~scatter_any(bad_pairs, v_sorted, n)

        with tracer.span(prefix + "interval_map"):
            # (viewer, rank) -> interval map for the extreme and membership
            # probes
            is_first = np.empty(m, dtype=bool)
            is_first[:1] = True
            is_first[1:] = ~dup[1:]
            map_keys = k_sorted[is_first]
            map_a = a_sorted[is_first]
            map_b = b_sorted[is_first]

        def interval_of(viewers: Any, queries: Any) -> tuple[Any, Any, Any]:
            valid = (queries >= 1) & (queries < _INDEX_ENC)
            pos, found = _sorted_lookup(
                map_keys, viewers * _INDEX_ENC + np.where(valid, queries, 0))
            return found & valid, map_a[pos], map_b[pos]

        with tracer.span(prefix + "extremes"):
            max_above = np.full(n, _INT64_MIN)
            np.maximum.at(max_above, src[above], rk_d[above])
            min_below = np.full(n, _INT64_MAX)
            np.minimum.at(min_below, src[below], rk_d[below])
            rows = np.arange(n, dtype=np.int64)

            # lines 10-11: the largest neighbor strictly inside [a, b] shares
            # I(x); at rank == total that neighbor is the virtual total+1,
            # whose interval is [-inf, +inf] and never equals (a, b)
            top_found, top_a, top_b = interval_of(rows, max_above)
            accept &= ~((rank == total) & (total + 1 < ib))
            accept &= ~((rank != total) & exists_above & (max_above < ib)
                        & ~(top_found & (top_a == ia) & (top_b == ib)))

            # lines 12-13: symmetric for the smallest neighbor
            bot_found, bot_a, bot_b = interval_of(rows, min_below)
            accept &= ~((rank == 1) & (ia < 0))
            accept &= ~((rank != 1) & exists_below & (min_below > ia)
                        & ~(bot_found & (bot_a == ia) & (bot_b == ib)))

            # lines 14-17: a neighbor interval delimited by my rank must end
            # at another neighbor (virtuals included) and sit strictly inside
            # I(x)
            na, nb = ia[dst], ib[dst]
            delimited = (na == rk_s) | (nb == rk_s)
            other = np.where(na == rk_s, nb, na)
            member = interval_of(src, other)[0]
            member |= (other == 0) & (rk_s == 1)
            member |= (other == tot_s + 1) & (rk_s == tot_s)
            contained = (ia[src] <= na) & (nb <= ib[src]) \
                & ~((na == ia[src]) & (nb == ib[src]))
            accept &= segment_all(~delimited | (member & contained), starts)

        return accept, view_fallback(ctx, table)


# ----------------------------------------------------------------------
# universal whole-graph-map scheme
# ----------------------------------------------------------------------
_CONTENT_KEY = "_vectorized_graphmap_content"
_MISSING = object()
#: memoised planarity verdict when materialising the map raises (self-loop
#: edges) — the holders take the reference path, which re-raises in node order
_PLANAR_ERROR = object()


def _intlike(value: Any) -> bool:
    return ((type(value) is int or type(value) is bool)
            and -ID_LIMIT < value < ID_LIMIT)


def _graphmap_content(certificate: GraphMapCertificate) -> tuple | None:
    """Canonical ``(node_ids, edges)`` content of a map, or ``None``.

    ``int()`` normalises ``bool`` entries, preserving the equality classes
    dataclass comparison sees (``True == 1``), so equal-content certificates
    intern to the same uid exactly when the reference ``!=`` calls them
    equal.  Non-tuple containers or out-of-int64-range entries have no exact
    array/interning representation and mark the holder unrepresentable.
    """
    node_ids = certificate.node_ids
    edges = certificate.edges
    if type(node_ids) is not tuple or type(edges) is not tuple:
        return None
    ids = []
    for value in node_ids:
        if not _intlike(value):
            return None
        ids.append(int(value))
    pairs = []
    for pair in edges:
        if type(pair) is not tuple or len(pair) != 2:
            return None
        u, v = pair
        if not _intlike(u) or not _intlike(v):
            return None
        pairs.append((int(u), int(v)))
    return (tuple(ids), tuple(pairs))


class UniversalMapKernel:
    """Full kernel of :class:`~repro.baselines.universal.UniversalPlanarityScheme`.

    Per-node work is interning (uid per distinct map content) plus one uid
    equality per directed edge; the map-vs-neighborhood and planarity checks
    run once per *distinct* map over its holders.  Per-map cost is linear in
    the map plus the holders' degrees, so honest assignments (one shared
    map) pay the map once per batch — and the planarity verdict is memoised
    on the certificate object, so repeated sweep trials pay it once ever.
    The reference evaluates ``is_planar`` only after the local checks pass
    somewhere, and materialising an ill-formed map raises — the kernel keeps
    both behaviours by deferring each map's planarity until a holder
    survives the local conjuncts and flagging fallback when it raises.
    """

    scheme_name = UniversalPlanarityScheme.name
    coverage = "full"

    def supports(self, scheme: Any) -> bool:
        return (type(scheme) is UniversalPlanarityScheme
                and scheme.verification_radius == 1)

    def accept_vector(self, ctx: Any, scheme: Any,
                      certificates: dict[Any, Any]) -> tuple[Any, Any]:
        tracer = current_tracer()
        prefix = "kernel:" + self.scheme_name + "/"
        n = ctx.n
        src, dst, starts = ctx.src, ctx.dst, ctx.starts
        present = np.zeros(n, dtype=bool)
        unrep = np.zeros(n, dtype=bool)
        uid = np.zeros(n, dtype=np.int64)
        interned: dict[Any, int] = {}
        reps: list[GraphMapCertificate] = []
        holders_of: list[list[int]] = []
        get = certificates.get
        with tracer.span(prefix + "intern") as sp:
            for i, label in enumerate(ctx.labels):
                certificate = get(label)
                if certificate is None:
                    continue
                if type(certificate) is not GraphMapCertificate:
                    unrep[i] = True
                    continue
                content = certificate.__dict__.get(_CONTENT_KEY, _MISSING)
                if content is _MISSING:
                    content = _graphmap_content(certificate)
                    certificate.__dict__[_CONTENT_KEY] = content
                if content is None:
                    unrep[i] = True
                    continue
                u = interned.get(content)
                if u is None:
                    u = len(reps)
                    interned[content] = u
                    reps.append(certificate)
                    holders_of.append([])
                present[i] = True
                uid[i] = u
                holders_of[u].append(i)
            if sp:
                sp.set(distinct_maps=len(reps))

        fallback = unrep | segment_any(unrep[dst], starts)
        # own map present; every neighbor carries the *same* map
        accept = present & segment_all(present[dst] & (uid[dst] == uid[src]),
                                       starts)

        ids = ctx.node_ids
        degrees = ctx.degrees
        planar_key = f"_vectorized_graphmap_planar_{scheme.backend}"
        with tracer.span(prefix + "map_checks"):
            self._check_maps(ctx, scheme, reps, holders_of, accept, fallback,
                             ids, degrees, planar_key, starts, dst)
        return accept, fallback

    @staticmethod
    def _check_maps(ctx: Any, scheme: Any, reps: list, holders_of: list,
                    accept: Any, fallback: Any, ids: Any, degrees: Any,
                    planar_key: str, starts: Any, dst: Any) -> None:
        """Per-distinct-map neighborhood and planarity checks (in place)."""
        for u, rep in enumerate(reps):
            holders = np.array(holders_of[u], dtype=np.int64)
            alive = accept[holders]
            if not alive.any():
                continue  # no holder reaches the map checks (reference laziness)
            map_ids, map_edges = rep.__dict__[_CONTENT_KEY]
            ids_arr = np.array(map_ids, dtype=np.int64)
            sorted_map_ids = np.sort(ids_arr)
            edges_arr = np.array(map_edges, dtype=np.int64).reshape(-1, 2)
            eu, ev = edges_arr[:, 0], edges_arr[:, 1]
            # directed pair set with the reference's elif semantics: (u, v)
            # always, (v, u) only when distinct — a self-loop (c, c) puts c
            # in its own neighbor set exactly once
            proper = eu != ev
            pu = np.concatenate([eu, ev[proper]])
            pv = np.concatenate([ev, eu[proper]])
            vocab = np.unique(np.concatenate([pu, pv]))
            width = max(len(vocab), 1)
            pair_keys = np.unique(np.searchsorted(vocab, pu) * width
                                  + np.searchsorted(vocab, pv))
            map_deg = np.bincount(pair_keys // width, minlength=width)

            # the center id appears in the map's node list ...
            center_ids = ids[holders]
            ok = _sorted_lookup(sorted_map_ids, center_ids)[1]
            # ... and the map's neighbor set equals the actual neighborhood:
            # same size, and every actual neighbor found among the map pairs
            center_local, center_known = _sorted_lookup(vocab, center_ids)
            ok &= np.where(center_known, map_deg[center_local], 0) \
                == degrees[holders]
            edge_pos = _concat_ranges(starts[holders], degrees[holders])
            nb_local, nb_known = _sorted_lookup(vocab, ids[dst[edge_pos]])
            counts = degrees[holders]
            pair_ok = np.repeat(center_known, counts) & nb_known \
                & _sorted_lookup(pair_keys,
                                 np.repeat(center_local, counts) * width
                                 + nb_local)[1]
            holder_index = np.repeat(np.arange(len(holders)), counts)
            ok &= np.bincount(holder_index[~pair_ok],
                              minlength=len(holders)) == 0

            alive &= ok
            accept[holders] = alive
            survivors = holders[alive]
            if not survivors.size:
                continue
            planar = rep.__dict__.get(planar_key, _MISSING)
            if planar is _MISSING:
                try:
                    planar = is_planar(rep.to_graph(), backend=scheme.backend)
                except Exception:
                    planar = _PLANAR_ERROR
                rep.__dict__[planar_key] = planar
            if planar is _PLANAR_ERROR:
                fallback[survivors] = True
            elif not planar:
                accept[survivors] = False


# ----------------------------------------------------------------------
# dMAM verification round
# ----------------------------------------------------------------------
#: second-message fields; products and coins only ever sit in equality
#: comparisons or enter the factors reduced mod ``FIELD_PRIME``
DMAM_SECOND_FIELDS = (
    FieldSpec("global_point", limit=ID_LIMIT),
    FieldSpec("push_product_subtree", limit=ID_LIMIT),
    FieldSpec("pop_product_subtree", limit=ID_LIMIT),
)

_MASK31 = (1 << 31) - 1
_MASK30 = (1 << 30) - 1
_MASK61 = (1 << 61) - 1


def mulmod_p61(a: Any, b: Any) -> Any:
    """Exact ``(a * b) % FIELD_PRIME`` on int64 arrays, ``a, b in [0, 2**61)``.

    Splits both operands at bit 31 and folds with ``2**61 ≡ 1 (mod p)``:
    every partial term stays below ``2**62``, their sum below ``2**63``, so
    the product never leaves int64 despite being up to 122 bits wide.
    """
    a1, a0 = a >> 31, a & _MASK31
    b1, b0 = b >> 31, b & _MASK31
    mid = a1 * b0 + a0 * b1
    low = a0 * b0
    total = (2 * a1 * b1                      # a1*b1*2**62 ≡ 2*a1*b1
             + (mid >> 30) + ((mid & _MASK30) << 31)   # mid*2**31 folded once
             + (low >> 61) + (low & _MASK61))
    return total % FIELD_PRIME


def _mulmod(a: Any, b: Any, prime: int) -> Any:
    """Exact ``(a * b) % prime`` on int64 arrays, operands in ``[0, prime)``.

    Two exact regimes: the Mersenne prime uses the bit-split fold above, and
    any prime below ``2**31`` multiplies directly (the product stays below
    ``2**62``, inside int64).  ``supports()`` admits nothing else.
    """
    if prime == FIELD_PRIME:
        return mulmod_p61(a, b)
    return (a * b) % prime


def _segment_prod_mod(values: Any, segments: Any, n: int,
                      prime: int = FIELD_PRIME) -> Any:
    """Per-segment product mod ``prime`` (values in ``[0, prime)``).

    ``segments`` must be non-decreasing (both callers walk CSR-ordered
    arrays); round ``k`` folds every segment's ``k``-th element in, so the
    loop runs ``max segment length`` times over shrinking index sets.
    """
    out = np.ones(n, dtype=np.int64)
    if len(values) == 0:
        return out
    counts = np.bincount(segments, minlength=n)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    for k in range(int(counts.max())):
        nodes = np.nonzero(counts > k)[0]
        out[nodes] = _mulmod(out[nodes], values[offsets[nodes] + k], prime)
    return out


@dataclass
class CompiledPrepared:
    """Challenge-independent dMAM verifier states in array form.

    One per (network, first-turn assignment), compiled from the
    ``prepare_verifier`` states and reused across every challenge draw of a
    soundness estimate (the engine caches it keyed on the prepared list).
    """

    #: 0 = normal, 1 = forced reject, 2 = single-node forced accept
    status: Any
    is_root: Any
    compares_global: Any
    #: node index / encoded event value per fingerprint event, node-sorted
    push_nodes: Any
    push_events: Any
    pop_nodes: Any
    pop_events: Any
    #: per directed edge: the target is a spanning-tree child of the source
    child_edge: Any
    #: field modulus the prepared states fingerprint over (uniform across
    #: the assignment: one protocol instance prepared them all)
    field_prime: int = FIELD_PRIME


class DMAMRoundKernel:
    """Round kernel of :class:`~repro.baselines.dmam.PlanarityDMAMProtocol`.

    ``coverage == "round"``: it accelerates the challenge-dependent
    verification round (``verify_with_state``) given the prepared states —
    the structural half stays in Python, where it runs once per first turn
    rather than once per draw.  Claimed subtree products enter the modular
    arithmetic reduced mod ``FIELD_PRIME`` (congruence-preserving), while
    the product *comparisons* stay on the raw claimed values, exactly like
    the reference.
    """

    scheme_name = PlanarityDMAMProtocol.name
    coverage = "round"

    def supports(self, protocol: Any) -> bool:
        if type(protocol) is not PlanarityDMAMProtocol:
            return False
        # the two moduli with an exact int64 multiply (see _mulmod); other
        # primes fall back to the reference round, decision-preserving
        prime = getattr(protocol, "field_prime", FIELD_PRIME)
        return prime == FIELD_PRIME or prime < (1 << 31)

    def compile_prepared(self, ctx: Any, prepared: list) -> CompiledPrepared:
        """Compile per-node prepared states (aligned with ``ctx.labels``)."""
        with current_tracer().span(
                "kernel:" + self.scheme_name + "/compile_prepared") as sp:
            if sp:
                sp.set(nodes=int(ctx.n))
            return self._compile_prepared(ctx, prepared)

    @staticmethod
    def _compile_prepared(ctx: Any, prepared: list) -> CompiledPrepared:
        n = ctx.n
        status = np.zeros(n, dtype=np.int8)
        is_root = np.zeros(n, dtype=bool)
        compares = np.zeros(n, dtype=bool)
        push_nodes: list[int] = []
        push_events: list[int] = []
        pop_nodes: list[int] = []
        pop_events: list[int] = []
        child_edge = np.zeros(len(ctx.dst), dtype=bool)
        field_prime = FIELD_PRIME
        ids, indptr, dst = ctx.node_ids, ctx.indptr, ctx.dst
        for i, state in enumerate(prepared):
            if state is _REJECT:
                status[i] = 1
                continue
            if state is _SINGLE_NODE:
                status[i] = 2
                continue
            is_root[i] = state.is_root
            compares[i] = state.compares_global
            field_prime = state.field_prime
            push_nodes.extend([i] * len(state.push_events))
            push_events.extend(state.push_events)
            pop_nodes.extend([i] * len(state.pop_events))
            pop_events.extend(state.pop_events)
            if state.child_ids:
                block = slice(int(indptr[i]), int(indptr[i + 1]))
                child_edge[block] = np.isin(
                    ids[dst[block]], np.array(state.child_ids, dtype=np.int64))
        return CompiledPrepared(
            status=status, is_root=is_root, compares_global=compares,
            push_nodes=np.array(push_nodes, dtype=np.int64),
            push_events=np.array(push_events, dtype=np.int64),
            pop_nodes=np.array(pop_nodes, dtype=np.int64),
            pop_events=np.array(pop_events, dtype=np.int64),
            child_edge=child_edge, field_prime=field_prime)

    def accept_round(self, ctx: Any, compiled: CompiledPrepared,
                     second: dict[Any, Any],
                     challenges: dict[Any, int]) -> tuple[Any, Any]:
        """One verification round: ``(accept, fallback)`` over the nodes."""
        tracer = current_tracer()
        prefix = "kernel:" + self.scheme_name + "/"
        table = compile_certificates(ctx, second, DMAMSecondMessage,
                                     DMAM_SECOND_FIELDS)
        n = ctx.n
        src, dst, starts = ctx.src, ctx.dst, ctx.starts
        present = table.present
        z = table.columns["global_point"]
        push_claim = table.columns["push_product_subtree"]
        pop_claim = table.columns["pop_product_subtree"]
        prime = compiled.field_prime
        with tracer.span(prefix + "coin_relay"):
            # keyed by node like the reference loop, including its KeyError
            # for missing nodes; the reduction runs only at roots, where the
            # reference performs it (a non-root garbage value must not raise)
            challenge = np.zeros(n, dtype=np.int64)
            is_root = compiled.is_root
            for i, label in enumerate(ctx.labels):
                value = challenges[label]
                if is_root[i]:
                    challenge[i] = value % prime

            # coin relay: every neighbor well-typed with the same raw z; the
            # root's coin must match its challenge
            ok = present & segment_all(present[dst], starts)
            ok &= segment_all(z[dst] == z[src], starts)
            ok &= ~(compiled.is_root & (z != challenge))

        with tracer.span(prefix + "fingerprint"):
            # fingerprint factors: prod (z - event) over my pre-encoded
            # events
            zr = np.mod(z, prime)
            push_factor = _segment_prod_mod(
                np.mod(zr[compiled.push_nodes] - compiled.push_events, prime),
                compiled.push_nodes, n, prime)
            pop_factor = _segment_prod_mod(
                np.mod(zr[compiled.pop_nodes] - compiled.pop_events, prime),
                compiled.pop_nodes, n, prime)

            # subtree products: mine equals my factor times my children's
            # claims
            child = compiled.child_edge
            expected_push = _mulmod(push_factor, _segment_prod_mod(
                np.mod(push_claim[dst[child]], prime), src[child], n, prime),
                prime)
            expected_pop = _mulmod(pop_factor, _segment_prod_mod(
                np.mod(pop_claim[dst[child]], prime), src[child], n, prime),
                prime)
            ok &= (push_claim == expected_push) & (pop_claim == expected_pop)
            ok &= ~compiled.compares_global | (push_claim == pop_claim)

        # single-node states accept on own typing alone; reject states veto
        accept = np.where(compiled.status == 2, present, ok)
        accept &= compiled.status != 1
        return accept, view_fallback(ctx, table)
