"""Array kernels for the paper's headline schemes.

PR 2 shipped kernels for the two radius-1 *building-block* schemes.  This
module extends the vectorized backend to the schemes the paper is actually
about:

* :class:`NonPlanarityKernel` — a **full** kernel for the folklore Kuratowski
  scheme (``non-planarity-pls``).  The certificate's nested and
  variable-width pieces (the ``spanning_tree`` label, the 5/6-slot
  ``branch_ids`` tuple, the optional ``role``) are flattened into bounded-
  width int64 columns through :class:`~repro.vectorized.compiler.FieldSpec`
  getters; the spanning-tree phase reuses the shared
  :func:`~repro.vectorized.kernels.spanning_tree_accept` sub-check as a
  prefilter, and the Kuratowski-membership checks (branch-vertex partner
  coverage, subdivided-path chaining) run as CSR gathers + segment
  reductions.  Every reference conjunct appears as one boolean array, so
  decisions are bit-identical wherever the certificates are representable;
  nodes that can see an unrepresentable certificate take the per-node
  reference fallback.

* :class:`PlanarityKernel` — a **prefilter** kernel for the Theorem 1 scheme
  (``planarity-pls``).  Algorithm 2's spanning-tree phase (Phase 2a) and its
  path-consistency phase (every incident edge covered by an edge certificate
  whose kind and orientation match the spanning-tree labels — tree edges
  certified as tree-path images, cotree edges as chords) are vectorized over
  a flattened offsets+values :class:`~repro.vectorized.compiler.EdgeListTable`
  of the per-edge certificates.  Both phases are *necessary* conditions of
  the reference verifier, and they run strictly before any step of
  ``reconstruct_local_structure`` that could raise, so a node failing them
  is **rejected for good**; the remaining phases (interval-map consistency,
  DFS-mapping of the Euler tour, the Algorithm 1 simulation) are
  certificate-set shaped, so every surviving node *falls back wholesale* to
  the reference verifier.  Decisions therefore stay byte-identical: the
  kernel only ever converts "reference would reject" into a cheap array
  reject.

The decision logic below is a literal transcription of
:meth:`repro.core.nonplanarity_scheme.NonPlanarityScheme.verify` and of
Phases 1–2a of :func:`repro.core.planarity_scheme.reconstruct_local_structure`;
guards replace short-circuits (a conjunct the reference never reaches is
AND-ed together with the guard that made it unreachable), which is sound
because the reference verifiers never raise on representable certificates.
``tests/test_vectorized.py`` fuzzes the equivalence on random planar and
non-planar graphs under random corruptions.
"""

from __future__ import annotations

from typing import Any

from repro.core.nonplanarity_scheme import (
    KIND_K33,
    KIND_K5,
    MAX_BRANCH_VERTICES,
    NonPlanarityCertificate,
    NonPlanarityScheme,
    SubdivisionRole,
)
from repro.core.planarity_scheme import (
    MAX_EDGE_CERTIFICATES_PER_NODE,
    MAX_INTERVAL_ENTRIES_PER_CERTIFICATE,
    CotreeEdgeCertificate,
    PlanarityCertificate,
    PlanarityScheme,
    TreeEdgeCertificate,
)
from repro.core.building_blocks import SpanningTreeLabel
from repro.vectorized.compiler import (
    HAVE_NUMPY,
    ID_LIMIT,
    UNREPRESENTABLE,
    FieldSpec,
    VectorContext,
    compile_certificates,
    compile_edge_lists,
)
from repro.vectorized.kernels import (
    scatter_any,
    segment_all,
    segment_any,
    spanning_tree_accept,
    view_fallback,
)

if HAVE_NUMPY:
    import numpy as np

__all__ = [
    "NESTED_SPANNING_TREE_FIELDS",
    "NONPLANARITY_FIELDS",
    "PLANARITY_FIELDS",
    "EDGE_CERTIFICATE_FIELDS",
    "NonPlanarityKernel",
    "PlanarityKernel",
]


# ----------------------------------------------------------------------
# derived-field getters
# ----------------------------------------------------------------------
def _st_field(name: str):
    """Getter for a field of the nested ``spanning_tree`` label.

    Anything that is not *exactly* a :class:`SpanningTreeLabel` (``None``
    included: the reference decides ``False`` on it, but through a code path
    the columns cannot mirror) is unrepresentable.
    """
    def get(certificate: Any) -> Any:
        label = certificate.spanning_tree
        if type(label) is not SpanningTreeLabel:
            return UNREPRESENTABLE
        return getattr(label, name)
    return get


def _branch_count(certificate: Any) -> Any:
    ids = certificate.branch_ids
    if type(ids) is not tuple or len(ids) > MAX_BRANCH_VERTICES:
        return UNREPRESENTABLE
    return len(ids)


def _branch_slot(slot: int):
    """Getter for one fixed-width slot of the ``branch_ids`` tuple.

    The tuple is at most :data:`MAX_BRANCH_VERTICES` long for every valid
    kind, so it flattens into that many optional columns plus a count column;
    longer (or non-tuple) values are unrepresentable.  The ``None`` mask of a
    slot column encodes *padding only* (``slot >= len``): a ``None`` sitting
    *inside* the tuple is also unrepresentable, because the kernel compares
    slot values against genuine identifiers (distinctness, the root/partner/
    path-end anchors) without consulting the mask, and a masked ``None``
    stored as ``0`` would conflate with a real identifier ``0``.
    """
    def get(certificate: Any) -> Any:
        ids = certificate.branch_ids
        if type(ids) is not tuple or len(ids) > MAX_BRANCH_VERTICES:
            return UNREPRESENTABLE
        if slot >= len(ids):
            return None
        if ids[slot] is None:
            return UNREPRESENTABLE
        return ids[slot]
    return get


def _has_role(certificate: Any) -> Any:
    role = certificate.role
    if role is None:
        return False
    if type(role) is not SubdivisionRole:
        return UNREPRESENTABLE
    return True


def _role_field(name: str):
    def get(certificate: Any) -> Any:
        role = certificate.role
        if role is None:
            return None
        if type(role) is not SubdivisionRole:
            return UNREPRESENTABLE
        return getattr(role, name)
    return get


#: the ``spanning_tree`` label of a composite certificate, flattened under
#: the exact names :func:`spanning_tree_accept` reads — compiling these into
#: a table makes the shared sub-check work on composite certificates as-is
NESTED_SPANNING_TREE_FIELDS = (
    FieldSpec("total", getter=_st_field("total")),
    FieldSpec("root_id", getter=_st_field("root_id")),
    FieldSpec("parent_id", optional=True, getter=_st_field("parent_id")),
    FieldSpec("distance", getter=_st_field("distance")),
    FieldSpec("subtree_size", getter=_st_field("subtree_size")),
)

#: field layout of :class:`NonPlanarityCertificate` consumed by its kernel;
#: identifier-valued and equality-only fields relax the magnitude bound to
#: :data:`ID_LIMIT` (they are never segment-summed)
NONPLANARITY_FIELDS = NESTED_SPANNING_TREE_FIELDS + (
    FieldSpec("kind", limit=ID_LIMIT),
    FieldSpec("branch_count", limit=ID_LIMIT, getter=_branch_count),
    *(FieldSpec(f"branch_{slot}", optional=True, limit=ID_LIMIT,
                getter=_branch_slot(slot))
      for slot in range(MAX_BRANCH_VERTICES)),
    FieldSpec("has_role", limit=ID_LIMIT, getter=_has_role),
    FieldSpec("branch_index", optional=True, limit=ID_LIMIT,
              getter=_role_field("branch_index")),
    FieldSpec("path_low", optional=True, limit=ID_LIMIT,
              getter=_role_field("path_low")),
    FieldSpec("path_high", optional=True, limit=ID_LIMIT,
              getter=_role_field("path_high")),
    FieldSpec("position", optional=True, limit=ID_LIMIT,
              getter=_role_field("position")),
    FieldSpec("prev_id", optional=True, limit=ID_LIMIT,
              getter=_role_field("prev_id")),
    FieldSpec("next_id", optional=True, limit=ID_LIMIT,
              getter=_role_field("next_id")),
)

#: node-level field layout of :class:`PlanarityCertificate`: the nested
#: spanning-tree label (the per-edge certificates live in an EdgeListTable)
PLANARITY_FIELDS = NESTED_SPANNING_TREE_FIELDS


def _entry_is_tree(entry: Any) -> Any:
    return type(entry) is TreeEdgeCertificate


def _entry_endpoint(tree_name: str, cotree_name: str):
    def get(entry: Any) -> Any:
        if type(entry) is TreeEdgeCertificate:
            return getattr(entry, tree_name)
        return getattr(entry, cotree_name)
    return get


def _entry_intervals_ok(entry: Any) -> Any:
    """Flag (not data): the entry's ``intervals`` walk cannot raise.

    The interval *values* stay out of the columns — the vectorized phases
    never read them — but the reference verifier unpacks every visible
    entry's ``intervals`` before its DFS-mapping phase, so an entry whose
    intervals are not a bounded tuple of int triples must force the holder's
    viewers onto the reference path (where a malformed tuple raises exactly
    as it would have).
    """
    entries = entry.intervals
    if type(entries) is not tuple or len(entries) > MAX_INTERVAL_ENTRIES_PER_CERTIFICATE:
        return UNREPRESENTABLE
    for item in entries:
        if type(item) is not tuple or len(item) != 3:
            return UNREPRESENTABLE
        if any(type(value) is not int and type(value) is not bool for value in item):
            return UNREPRESENTABLE
    return True


#: per-entry layout of the flattened ``edge_certificates`` lists: the edge
#: kind and the two endpoint identifiers, which is exactly what the
#: path-consistency phase matches against the spanning-tree labels
EDGE_CERTIFICATE_FIELDS = (
    FieldSpec("is_tree", limit=ID_LIMIT, getter=_entry_is_tree),
    FieldSpec("id_a", limit=ID_LIMIT, getter=_entry_endpoint("parent_id", "a_id")),
    FieldSpec("id_b", limit=ID_LIMIT, getter=_entry_endpoint("child_id", "b_id")),
    FieldSpec("intervals_ok", limit=ID_LIMIT, getter=_entry_intervals_ok),
)


# ----------------------------------------------------------------------
# non-planarity: a full kernel
# ----------------------------------------------------------------------
class NonPlanarityKernel:
    """Bulk verifier of :class:`~repro.core.nonplanarity_scheme.NonPlanarityScheme`.

    Phases mirror the reference verifier:

    1. *global claim* — kind valid, branch tuple of the expected size with
       distinct entries, every neighbor agreeing on (kind, branch_ids);
    2. *spanning-tree anchor* — the shared :func:`spanning_tree_accept`
       prefilter, plus root anchored at branch vertex 0 (if no node survives
       both phases the role passes are skipped entirely);
    3. *branch role* — the node owns its claimed branch identifier and every
       required partner edge of the subdivision pattern is matched by a
       neighboring branch vertex or path endpoint;
    4. *internal role* — the (low, high) pair is legal for the claimed kind
       and the predecessor/successor links chain the subdivided path.
    """

    scheme_name = NonPlanarityScheme.name

    def supports(self, scheme: Any) -> bool:
        # the backend parameter only affects membership tests and the honest
        # prover, never the verifier's decision function
        return type(scheme) is NonPlanarityScheme and scheme.verification_radius == 1

    def accept_vector(self, ctx: VectorContext, scheme: Any,
                      certificates: dict[Any, Any]) -> tuple[Any, Any]:
        table = compile_certificates(ctx, certificates, NonPlanarityCertificate,
                                     NONPLANARITY_FIELDS)
        fallback = view_fallback(ctx, table)
        src, dst, starts = ctx.src, ctx.dst, ctx.starts
        ids = ctx.node_ids
        n = ctx.n
        rows = np.arange(n)
        columns, isnone = table.columns, table.isnone

        kind = columns["kind"]
        bcount = columns["branch_count"]
        branch = np.stack([columns[f"branch_{slot}"]
                           for slot in range(MAX_BRANCH_VERTICES)], axis=1)
        bnone = np.stack([isnone[f"branch_{slot}"]
                          for slot in range(MAX_BRANCH_VERTICES)], axis=1)
        has_role = columns["has_role"].astype(bool)
        bindex, bindex_none = columns["branch_index"], isnone["branch_index"]
        low, low_none = columns["path_low"], isnone["path_low"]
        high, high_none = columns["path_high"], isnone["path_high"]
        position, position_none = columns["position"], isnone["position"]
        prev, prev_none = columns["prev_id"], isnone["prev_id"]
        nxt, next_none = columns["next_id"], isnone["next_id"]
        st_total = columns["total"]
        st_root = columns["root_id"]

        # ---- phase 1+2: global claim and spanning-tree anchor (prefilter) --
        accept = spanning_tree_accept(ctx, table)
        is_k33 = kind == KIND_K33
        expected = np.where(is_k33, 6, 5)
        accept &= ((kind == KIND_K5) | is_k33) & (bcount == expected)
        distinct5 = np.ones(n, dtype=bool)
        distinct6 = np.ones(n, dtype=bool)
        for i in range(MAX_BRANCH_VERTICES):
            for j in range(i + 1, MAX_BRANCH_VERTICES):
                differs = branch[:, i] != branch[:, j]
                distinct6 &= differs
                if j < 5:
                    distinct5 &= differs
        accept &= np.where(is_k33, distinct6, distinct5)
        same_claim = kind[dst] == kind[src]
        same_claim &= bcount[dst] == bcount[src]
        for slot in range(MAX_BRANCH_VERTICES):
            same_claim &= (branch[dst, slot] == branch[src, slot]) \
                & (bnone[dst, slot] == bnone[src, slot])
        accept &= segment_all(same_claim, starts)
        # the spanning tree anchors the existence of branch vertex 0
        accept &= ~bnone[:, 0] & (st_root == branch[:, 0])
        is_root_node = ids == st_root
        accept &= ~is_root_node | (has_role & ~bindex_none & (bindex == 0))
        if not accept.any():
            return accept, fallback

        is_branch = has_role & ~bindex_none
        is_internal = has_role & bindex_none

        # ---- phase 3: branch vertices own their id and see every partner --
        k = bindex
        k_ok = (0 <= k) & (k < bcount)
        k_clip = np.clip(k, 0, MAX_BRANCH_VERTICES - 1)
        branch_accept = k_ok & (ids == branch[rows, k_clip])
        total_edge = st_total[src]
        for s in range(4):
            # the s-th required partner of branch vertex k: for K5 the s-th
            # element of range(5) minus k; for K3,3 the s-th vertex of the
            # opposite side (slot 3 exists only for K5)
            partner = np.where(~is_k33, s + (s >= k),
                               np.where(k < 3, 3 + s, s))
            partner_clip = np.clip(partner, 0, MAX_BRANCH_VERTICES - 1)
            partner_id = branch[rows, partner_clip]
            partner_is_high = partner > k
            pair_low = np.minimum(k, partner)
            pair_high = np.maximum(k, partner)
            found_branch = is_branch[dst] & (bindex[dst] == partner[src]) \
                & (ids[dst] == partner_id[src])
            found_internal = is_internal[dst] \
                & ~low_none[dst] & (low[dst] == pair_low[src]) \
                & ~high_none[dst] & (high[dst] == pair_high[src]) \
                & ~position_none[dst] & (1 <= position[dst]) \
                & (position[dst] <= total_edge)
            path_end = np.where(
                partner_is_high[src],
                ~prev_none[dst] & (position[dst] == 1) & (prev[dst] == ids[src]),
                ~next_none[dst] & (nxt[dst] == ids[src]))
            slot_ok = segment_any(found_branch | (found_internal & path_end), starts)
            if s == 3:
                slot_ok |= is_k33
            branch_accept &= slot_ok

        # ---- phase 4: internal vertices chain their subdivided path -------
        fields_ok = ~low_none & ~high_none & ~position_none \
            & ~prev_none & ~next_none
        range_ok = (0 <= low) & (low < high) & (high < bcount)
        # every (low, high) pair is legal for K5; K3,3 requires opposite sides
        pair_ok = ~is_k33 | ((low < 3) & (high >= 3))
        position_ok = (1 <= position) & (position <= st_total)
        low_clip = np.clip(low, 0, MAX_BRANCH_VERTICES - 1)
        high_clip = np.clip(high, 0, MAX_BRANCH_VERTICES - 1)
        branch_low_id = branch[rows, low_clip]
        branch_high_id = branch[rows, high_clip]
        prev_edge = ~prev_none[src] & (ids[dst] == prev[src])
        next_edge = ~next_none[src] & (ids[dst] == nxt[src])
        chain = is_internal[dst] \
            & ~low_none[dst] & (low[dst] == low[src]) \
            & ~high_none[dst] & (high[dst] == high[src]) & ~position_none[dst]
        # predecessor: the previous internal vertex, or the low branch vertex
        # exactly at position 1
        prev_is_branch = is_branch[dst] & (bindex[dst] == low[src]) \
            & (prev[src] == branch_low_id[src])
        prev_is_chain = chain & (position[dst] == position[src] - 1)
        first_position = (position == 1)[src]
        prev_ok = segment_any(
            prev_edge & np.where(first_position, prev_is_branch, prev_is_chain),
            starts)
        # successor: the next internal vertex, or the high branch vertex
        next_is_branch = is_branch[dst] & (bindex[dst] == high[src]) \
            & (nxt[src] == branch_high_id[src])
        next_is_chain = chain & (position[dst] == position[src] + 1)
        next_ok = segment_any(next_edge & (next_is_branch | next_is_chain), starts)
        internal_accept = fields_ok & range_ok & pair_ok & position_ok \
            & prev_ok & next_ok

        accept &= ~has_role | np.where(is_branch, branch_accept, internal_accept)
        return accept, fallback


# ----------------------------------------------------------------------
# planarity: a prefilter kernel (Algorithm 2, Phases 2a + path consistency)
# ----------------------------------------------------------------------
#: give up on the path-consistency join when the flattened
#: (viewer, edge certificate) pair set exceeds this multiple of the CSR size
#: — adversarial assignments can stuff one node's certificate list, and the
#: surviving nodes fall back to the reference verifier anyway
_JOIN_BUDGET_FACTOR = 64


class PlanarityKernel:
    """Prefilter kernel of :class:`~repro.core.planarity_scheme.PlanarityScheme`.

    ``accept[i]`` is meaningful only where it is ``False``: the vectorized
    phases are necessary conditions of Algorithm 2, so a failing node is
    rejected exactly like the reference verifier would.  Every node that
    *passes* them is flagged for fallback (the remaining phases re-assemble
    per-node certificate sets, which has no bounded-width array form), so the
    engine re-decides it with the reference verifier and decisions stay
    byte-identical.  The win is on adversarial bulk sweeps, where most nodes
    die in the vectorized phases.
    """

    scheme_name = PlanarityScheme.name

    def supports(self, scheme: Any) -> bool:
        # prover-side parameters (embedding backend, spanning-tree builder,
        # root) never change the verifier; distribute_by_degeneracy does, and
        # accept_vector reads it, so both settings are supported
        return type(scheme) is PlanarityScheme and scheme.verification_radius == 1

    def accept_vector(self, ctx: VectorContext, scheme: Any,
                      certificates: dict[Any, Any]) -> tuple[Any, Any]:
        table = compile_certificates(ctx, certificates, PlanarityCertificate,
                                     PLANARITY_FIELDS)
        edges = compile_edge_lists(ctx, certificates, PlanarityCertificate,
                                   "edge_certificates",
                                   (TreeEdgeCertificate, CotreeEdgeCertificate),
                                   EDGE_CERTIFICATE_FIELDS)
        src, dst, starts = ctx.src, ctx.dst, ctx.starts
        ids = ctx.node_ids
        n = ctx.n
        present = table.present
        parent = table.columns["parent_id"]
        parent_none = table.isnone["parent_id"]

        bad = table.unrepresentable | edges.unrepresentable
        fallback = bad | segment_any(bad[dst], starts)

        # ---- Phase 2a: T is a spanning tree of G --------------------------
        accept = spanning_tree_accept(ctx, table)
        if scheme.distribute_by_degeneracy:
            # planar graphs are 5-degenerate; the honest prover never charges
            # more certificates to a node, and the verifier enforces it
            accept &= edges.counts <= MAX_EDGE_CERTIFICATES_PER_NODE

        # ---- path consistency: every incident edge is covered by an edge
        # certificate whose kind and orientation match the spanning tree ----
        need_parent = ~parent_none[src] & (ids[dst] == parent[src])
        need_child = present[dst] & ~parent_none[dst] & (parent[dst] == ids[src])
        matched = self._edge_matches(ctx, edges)
        if matched is not None:
            has_parent_form, has_child_form, has_cotree_form = matched
            edge_ok = (~need_parent | has_parent_form) \
                & (~need_child | has_child_form) \
                & (need_parent | need_child | has_cotree_form)
            accept &= segment_all(edge_ok, starts)

        # survivors of the vectorized phases are re-decided by the reference
        # verifier wholesale — the remaining Algorithm 2 phases stay there
        fallback |= accept
        return accept, fallback

    @staticmethod
    def _edge_matches(ctx: VectorContext, edges: Any):
        """Per-directed-edge booleans: a matching certificate is visible.

        For the directed edge ``(u, v)`` a certificate *matches* when its
        endpoint identifiers are exactly ``{id(u), id(v)}`` and it is visible
        at ``u`` (held by ``u`` or one of its neighbors); the three returned
        arrays split matches by form — tree certificate oriented ``v → u``
        (parent form), tree certificate oriented ``u → v`` (child form), and
        cotree certificate (either orientation).  Returns ``None`` when the
        (viewer, certificate) join would exceed the size budget; callers then
        skip the phase (the affected nodes simply stay on the fallback path).
        """
        n = ctx.n
        ids = ctx.node_ids
        src, dst = ctx.src, ctx.dst
        counts = edges.counts
        holder = np.repeat(np.arange(n), counts)
        entries_total = int(counts.sum())
        csr_size = len(dst) + n
        if entries_total == 0:
            empty = np.zeros(len(dst), dtype=bool)
            return empty, empty.copy(), empty.copy()
        # (viewer, entry) pairs: each entry is visible at its holder and at
        # every neighbor of its holder
        pair_sizes = ctx.degrees[holder] + 1
        if int(pair_sizes.sum()) > _JOIN_BUDGET_FACTOR * csr_size:
            return None
        viewer_self = holder
        # entries of dst[j] are visible to src[j]: expand each directed edge
        # by the entry count of its head
        per_edge = counts[dst]
        viewer_nb = np.repeat(src, per_edge)
        entry_nb = _concat_ranges(edges.offsets[dst], per_edge)
        viewer = np.concatenate([viewer_self, viewer_nb])
        entry = np.concatenate([np.arange(entries_total), entry_nb])

        id_a = edges.columns["id_a"][entry]
        id_b = edges.columns["id_b"][entry]
        is_tree = edges.columns["is_tree"][entry].astype(bool)
        viewer_id = ids[viewer]
        incident = (id_a == viewer_id) | (id_b == viewer_id)
        # identifiers are distinct and below 2**62, so the endpoint sum
        # recovers "the other endpoint" without overflow
        other_id = id_a + id_b - viewer_id
        proper = incident & (other_id != viewer_id)

        # resolve the other endpoint to a node index (misses drop out)
        order, sorted_ids = ctx.id_index()
        slot = np.searchsorted(sorted_ids, other_id)
        slot_clip = np.minimum(slot, n - 1)
        resolved = proper & (sorted_ids[slot_clip] == other_id)
        other = order[slot_clip]

        # map (viewer, other) to its directed-edge position; non-adjacent
        # pairs drop out (the certificate mentions a non-edge — harmless
        # here, the coverage conjunct simply stays unsatisfied)
        edge_order, sorted_keys = ctx.edge_index()
        pair_keys = viewer * n + other
        position = np.searchsorted(sorted_keys, pair_keys)
        position_clip = np.minimum(position, len(sorted_keys) - 1)
        adjacent = resolved & (sorted_keys[position_clip] == pair_keys)
        edge_at = edge_order[position_clip]

        keep = adjacent
        edge_at = edge_at[keep]
        id_a, id_b = id_a[keep], id_b[keep]
        is_tree = is_tree[keep]
        viewer_id = viewer_id[keep]
        other_id = other_id[keep]

        m = len(dst)
        parent_form = scatter_any(is_tree & (id_a == other_id) & (id_b == viewer_id),
                                  edge_at, m)
        child_form = scatter_any(is_tree & (id_a == viewer_id) & (id_b == other_id),
                                 edge_at, m)
        cotree_form = scatter_any(~is_tree, edge_at, m)
        return parent_form, child_form, cotree_form


def _concat_ranges(starts: Any, lengths: Any) -> Any:
    """Concatenate ``arange(starts[i], starts[i] + lengths[i])`` blocks."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nonzero = lengths > 0
    starts = starts[nonzero]
    lengths = lengths[nonzero]
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    block_ends = np.cumsum(lengths)[:-1]
    out[block_ends] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)
