"""Array kernels for the paper's headline schemes.

PR 2 shipped kernels for the two radius-1 *building-block* schemes.  This
module extends the vectorized backend to the schemes the paper is actually
about:

* :class:`NonPlanarityKernel` — a **full** kernel for the folklore Kuratowski
  scheme (``non-planarity-pls``).  The certificate's nested and
  variable-width pieces (the ``spanning_tree`` label, the 5/6-slot
  ``branch_ids`` tuple, the optional ``role``) are flattened into bounded-
  width int64 columns through :class:`~repro.vectorized.compiler.FieldSpec`
  getters; the spanning-tree phase reuses the shared
  :func:`~repro.vectorized.kernels.spanning_tree_accept` sub-check as a
  prefilter, and the Kuratowski-membership checks (branch-vertex partner
  coverage, subdivided-path chaining) run as CSR gathers + segment
  reductions.  Every reference conjunct appears as one boolean array, so
  decisions are bit-identical wherever the certificates are representable;
  nodes that can see an unrepresentable certificate take the per-node
  reference fallback.

* :class:`PlanarityKernel` — a **full** kernel for the Theorem 1 scheme
  (``planarity-pls``).  Every phase of Algorithm 2 runs as segmented array
  passes: the spanning-tree phase on the nested label columns, the
  collection/coverage/conflict phase as a (viewer, visible edge certificate)
  join over the flattened offsets+values
  :class:`~repro.vectorized.compiler.EdgeListTable`, interval-map
  consistency and the DFS-mapping/Euler-tour chain as per-node segmented
  sorts (single ``np.argsort`` passes over ``node * 2**32 + index``
  composite keys — the bounded-key specialisation of
  :func:`~repro.vectorized.kernels.segment_sort` — aligned with
  :func:`~repro.vectorized.kernels.segment_rank`), and the Algorithm 1
  simulation over the reconstructed copy and chord domains with binary
  lookups into a per-viewer sorted interval map.  Accepting and rejecting
  decisions are both final; ``view_fallback`` is reserved for the documented
  unrepresentable-value cases (malformed or oversized interval tuples,
  non-int fields, foreign types) and for the join-budget degradation, where
  the kernel falls back to its PR-3 prefilter contract.

The decision logic below is a literal transcription of
:meth:`repro.core.nonplanarity_scheme.NonPlanarityScheme.verify` and of
:func:`repro.core.planarity_scheme.reconstruct_local_structure` plus
:func:`repro.core.planarity_scheme.simulate_algorithm1`;
guards replace short-circuits (a conjunct the reference never reaches is
AND-ed together with the guard that made it unreachable), which is sound
because the reference verifiers never raise on representable certificates.
``tests/test_vectorized.py`` fuzzes the equivalence on random planar and
non-planar graphs under random corruptions.
"""

from __future__ import annotations

from typing import Any

from repro.core.nonplanarity_scheme import (
    KIND_K33,
    KIND_K5,
    MAX_BRANCH_VERTICES,
    NonPlanarityCertificate,
    NonPlanarityScheme,
    SubdivisionRole,
)
from repro.core.planarity_scheme import (
    MAX_EDGE_CERTIFICATES_PER_NODE,
    MAX_INTERVAL_ENTRIES_PER_CERTIFICATE,
    CotreeEdgeCertificate,
    PlanarityCertificate,
    PlanarityScheme,
    TreeEdgeCertificate,
)
from repro.core.building_blocks import SpanningTreeLabel
from repro.observability.tracer import current as current_tracer
from repro.vectorized.compiler import (
    HAVE_NUMPY,
    ID_LIMIT,
    UNREPRESENTABLE,
    FieldSpec,
    VectorContext,
    compile_certificates,
    compile_edge_lists,
)
from repro.vectorized.kernels import (
    scatter_any,
    segment_all,
    segment_any,
    segment_rank,
    spanning_tree_accept,
    view_fallback,
)

if HAVE_NUMPY:
    import numpy as np

__all__ = [
    "NESTED_SPANNING_TREE_FIELDS",
    "NONPLANARITY_FIELDS",
    "PLANARITY_FIELDS",
    "EDGE_CERTIFICATE_FIELDS",
    "INTERVAL_ENTRY_FIELDS",
    "NonPlanarityKernel",
    "PlanarityKernel",
]


# ----------------------------------------------------------------------
# derived-field getters
# ----------------------------------------------------------------------
def _st_field(name: str):
    """Getter for a field of the nested ``spanning_tree`` label.

    Anything that is not *exactly* a :class:`SpanningTreeLabel` (``None``
    included: the reference decides ``False`` on it, but through a code path
    the columns cannot mirror) is unrepresentable.
    """
    def get(certificate: Any) -> Any:
        label = certificate.spanning_tree
        if type(label) is not SpanningTreeLabel:
            return UNREPRESENTABLE
        return getattr(label, name)
    return get


def _branch_count(certificate: Any) -> Any:
    ids = certificate.branch_ids
    if type(ids) is not tuple or len(ids) > MAX_BRANCH_VERTICES:
        return UNREPRESENTABLE
    return len(ids)


def _branch_slot(slot: int):
    """Getter for one fixed-width slot of the ``branch_ids`` tuple.

    The tuple is at most :data:`MAX_BRANCH_VERTICES` long for every valid
    kind, so it flattens into that many optional columns plus a count column;
    longer (or non-tuple) values are unrepresentable.  The ``None`` mask of a
    slot column encodes *padding only* (``slot >= len``): a ``None`` sitting
    *inside* the tuple is also unrepresentable, because the kernel compares
    slot values against genuine identifiers (distinctness, the root/partner/
    path-end anchors) without consulting the mask, and a masked ``None``
    stored as ``0`` would conflate with a real identifier ``0``.
    """
    def get(certificate: Any) -> Any:
        ids = certificate.branch_ids
        if type(ids) is not tuple or len(ids) > MAX_BRANCH_VERTICES:
            return UNREPRESENTABLE
        if slot >= len(ids):
            return None
        if ids[slot] is None:
            return UNREPRESENTABLE
        return ids[slot]
    return get


def _has_role(certificate: Any) -> Any:
    role = certificate.role
    if role is None:
        return False
    if type(role) is not SubdivisionRole:
        return UNREPRESENTABLE
    return True


def _role_field(name: str):
    def get(certificate: Any) -> Any:
        role = certificate.role
        if role is None:
            return None
        if type(role) is not SubdivisionRole:
            return UNREPRESENTABLE
        return getattr(role, name)
    return get


#: the ``spanning_tree`` label of a composite certificate, flattened under
#: the exact names :func:`spanning_tree_accept` reads — compiling these into
#: a table makes the shared sub-check work on composite certificates as-is
NESTED_SPANNING_TREE_FIELDS = (
    FieldSpec("total", getter=_st_field("total")),
    FieldSpec("root_id", limit=ID_LIMIT, getter=_st_field("root_id")),
    FieldSpec("parent_id", optional=True, limit=ID_LIMIT,
              getter=_st_field("parent_id")),
    FieldSpec("distance", getter=_st_field("distance")),
    FieldSpec("subtree_size", getter=_st_field("subtree_size")),
)

#: field layout of :class:`NonPlanarityCertificate` consumed by its kernel;
#: identifier-valued and equality-only fields relax the magnitude bound to
#: :data:`ID_LIMIT` (they are never segment-summed)
NONPLANARITY_FIELDS = NESTED_SPANNING_TREE_FIELDS + (
    FieldSpec("kind", limit=ID_LIMIT),
    FieldSpec("branch_count", limit=ID_LIMIT, getter=_branch_count),
    *(FieldSpec(f"branch_{slot}", optional=True, limit=ID_LIMIT,
                getter=_branch_slot(slot))
      for slot in range(MAX_BRANCH_VERTICES)),
    FieldSpec("has_role", limit=ID_LIMIT, getter=_has_role),
    FieldSpec("branch_index", optional=True, limit=ID_LIMIT,
              getter=_role_field("branch_index")),
    FieldSpec("path_low", optional=True, limit=ID_LIMIT,
              getter=_role_field("path_low")),
    FieldSpec("path_high", optional=True, limit=ID_LIMIT,
              getter=_role_field("path_high")),
    FieldSpec("position", optional=True, limit=ID_LIMIT,
              getter=_role_field("position")),
    FieldSpec("prev_id", optional=True, limit=ID_LIMIT,
              getter=_role_field("prev_id")),
    FieldSpec("next_id", optional=True, limit=ID_LIMIT,
              getter=_role_field("next_id")),
)

#: node-level field layout of :class:`PlanarityCertificate`: the nested
#: spanning-tree label (the per-edge certificates live in an EdgeListTable)
PLANARITY_FIELDS = NESTED_SPANNING_TREE_FIELDS


def _entry_is_tree(entry: Any) -> Any:
    return type(entry) is TreeEdgeCertificate


def _entry_endpoint(tree_name: str, cotree_name: str):
    def get(entry: Any) -> Any:
        if type(entry) is TreeEdgeCertificate:
            return getattr(entry, tree_name)
        return getattr(entry, cotree_name)
    return get


#: per-entry layout of the flattened ``edge_certificates`` lists: the edge
#: kind, the two endpoint identifiers the collection phase matches against
#: the spanning-tree labels, and the two ``G_{T,f}`` indices (descend/return
#: for tree edges, the two chord copies for cotree edges) that the
#: DFS-mapping and Algorithm 1 phases consume.  Together with the interval
#: sub-list these cover every dataclass field of both entry types, which is
#: what entitles the kernel to treat the compiler's per-entry ``uids`` as
#: dataclass equality (the conflicting-certificates check).
EDGE_CERTIFICATE_FIELDS = (
    FieldSpec("is_tree", limit=ID_LIMIT, getter=_entry_is_tree),
    FieldSpec("id_a", limit=ID_LIMIT, getter=_entry_endpoint("parent_id", "a_id")),
    FieldSpec("id_b", limit=ID_LIMIT, getter=_entry_endpoint("child_id", "b_id")),
    FieldSpec("idx_a", limit=ID_LIMIT, getter=_entry_endpoint("descend_index", "copy_a")),
    FieldSpec("idx_b", limit=ID_LIMIT, getter=_entry_endpoint("return_index", "copy_b")),
)

#: positional layout of one ``(index, low, high)`` interval entry; the values
#: are only ever equality/order-compared (never segment-summed), so the
#: identifier-sized magnitude bound applies
INTERVAL_ENTRY_FIELDS = (
    FieldSpec("index", limit=ID_LIMIT),
    FieldSpec("low", limit=ID_LIMIT),
    FieldSpec("high", limit=ID_LIMIT),
)


# ----------------------------------------------------------------------
# non-planarity: a full kernel
# ----------------------------------------------------------------------
class NonPlanarityKernel:
    """Bulk verifier of :class:`~repro.core.nonplanarity_scheme.NonPlanarityScheme`.

    Phases mirror the reference verifier:

    1. *global claim* — kind valid, branch tuple of the expected size with
       distinct entries, every neighbor agreeing on (kind, branch_ids);
    2. *spanning-tree anchor* — the shared :func:`spanning_tree_accept`
       prefilter, plus root anchored at branch vertex 0 (if no node survives
       both phases the role passes are skipped entirely);
    3. *branch role* — the node owns its claimed branch identifier and every
       required partner edge of the subdivision pattern is matched by a
       neighboring branch vertex or path endpoint;
    4. *internal role* — the (low, high) pair is legal for the claimed kind
       and the predecessor/successor links chain the subdivided path.
    """

    scheme_name = NonPlanarityScheme.name
    coverage = "full"

    def supports(self, scheme: Any) -> bool:
        # the backend parameter only affects membership tests and the honest
        # prover, never the verifier's decision function
        return type(scheme) is NonPlanarityScheme and scheme.verification_radius == 1

    def accept_vector(self, ctx: VectorContext, scheme: Any,
                      certificates: dict[Any, Any]) -> tuple[Any, Any]:
        tracer = current_tracer()
        prefix = "kernel:" + self.scheme_name + "/"
        table = compile_certificates(ctx, certificates, NonPlanarityCertificate,
                                     NONPLANARITY_FIELDS)
        fallback = view_fallback(ctx, table)
        src, dst, starts = ctx.src, ctx.dst, ctx.starts
        ids = ctx.node_ids
        n = ctx.n
        rows = np.arange(n)
        columns, isnone = table.columns, table.isnone

        kind = columns["kind"]
        bcount = columns["branch_count"]
        branch = np.stack([columns[f"branch_{slot}"]
                           for slot in range(MAX_BRANCH_VERTICES)], axis=1)
        bnone = np.stack([isnone[f"branch_{slot}"]
                          for slot in range(MAX_BRANCH_VERTICES)], axis=1)
        has_role = columns["has_role"].astype(bool)
        bindex, bindex_none = columns["branch_index"], isnone["branch_index"]
        low, low_none = columns["path_low"], isnone["path_low"]
        high, high_none = columns["path_high"], isnone["path_high"]
        position, position_none = columns["position"], isnone["position"]
        prev, prev_none = columns["prev_id"], isnone["prev_id"]
        nxt, next_none = columns["next_id"], isnone["next_id"]
        st_total = columns["total"]
        st_root = columns["root_id"]

        # ---- phase 1+2: global claim and spanning-tree anchor (prefilter) --
        with tracer.span(prefix + "spanning_tree"):
            accept = spanning_tree_accept(ctx, table)
            is_k33 = kind == KIND_K33
            expected = np.where(is_k33, 6, 5)
            accept &= ((kind == KIND_K5) | is_k33) & (bcount == expected)
            distinct5 = np.ones(n, dtype=bool)
            distinct6 = np.ones(n, dtype=bool)
            for i in range(MAX_BRANCH_VERTICES):
                for j in range(i + 1, MAX_BRANCH_VERTICES):
                    differs = branch[:, i] != branch[:, j]
                    distinct6 &= differs
                    if j < 5:
                        distinct5 &= differs
            accept &= np.where(is_k33, distinct6, distinct5)
            same_claim = kind[dst] == kind[src]
            same_claim &= bcount[dst] == bcount[src]
            for slot in range(MAX_BRANCH_VERTICES):
                same_claim &= (branch[dst, slot] == branch[src, slot]) \
                    & (bnone[dst, slot] == bnone[src, slot])
            accept &= segment_all(same_claim, starts)
            # the spanning tree anchors the existence of branch vertex 0
            accept &= ~bnone[:, 0] & (st_root == branch[:, 0])
            is_root_node = ids == st_root
            accept &= ~is_root_node | (has_role & ~bindex_none & (bindex == 0))
        if not accept.any():
            return accept, fallback

        is_branch = has_role & ~bindex_none
        is_internal = has_role & bindex_none

        # ---- phase 3: branch vertices own their id and see every partner --
        with tracer.span(prefix + "branch_roles"):
            k = bindex
            k_ok = (0 <= k) & (k < bcount)
            k_clip = np.clip(k, 0, MAX_BRANCH_VERTICES - 1)
            branch_accept = k_ok & (ids == branch[rows, k_clip])
            total_edge = st_total[src]
            for s in range(4):
                # the s-th required partner of branch vertex k: for K5 the s-th
                # element of range(5) minus k; for K3,3 the s-th vertex of the
                # opposite side (slot 3 exists only for K5)
                partner = np.where(~is_k33, s + (s >= k),
                                   np.where(k < 3, 3 + s, s))
                partner_clip = np.clip(partner, 0, MAX_BRANCH_VERTICES - 1)
                partner_id = branch[rows, partner_clip]
                partner_is_high = partner > k
                pair_low = np.minimum(k, partner)
                pair_high = np.maximum(k, partner)
                found_branch = is_branch[dst] & (bindex[dst] == partner[src]) \
                    & (ids[dst] == partner_id[src])
                found_internal = is_internal[dst] \
                    & ~low_none[dst] & (low[dst] == pair_low[src]) \
                    & ~high_none[dst] & (high[dst] == pair_high[src]) \
                    & ~position_none[dst] & (1 <= position[dst]) \
                    & (position[dst] <= total_edge)
                path_end = np.where(
                    partner_is_high[src],
                    ~prev_none[dst] & (position[dst] == 1) & (prev[dst] == ids[src]),
                    ~next_none[dst] & (nxt[dst] == ids[src]))
                slot_ok = segment_any(found_branch | (found_internal & path_end), starts)
                if s == 3:
                    slot_ok |= is_k33
                branch_accept &= slot_ok

        # ---- phase 4: internal vertices chain their subdivided path -------
        with tracer.span(prefix + "internal_roles"):
            fields_ok = ~low_none & ~high_none & ~position_none \
                & ~prev_none & ~next_none
            range_ok = (0 <= low) & (low < high) & (high < bcount)
            # every (low, high) pair is legal for K5; K3,3 requires opposite sides
            pair_ok = ~is_k33 | ((low < 3) & (high >= 3))
            position_ok = (1 <= position) & (position <= st_total)
            low_clip = np.clip(low, 0, MAX_BRANCH_VERTICES - 1)
            high_clip = np.clip(high, 0, MAX_BRANCH_VERTICES - 1)
            branch_low_id = branch[rows, low_clip]
            branch_high_id = branch[rows, high_clip]
            prev_edge = ~prev_none[src] & (ids[dst] == prev[src])
            next_edge = ~next_none[src] & (ids[dst] == nxt[src])
            chain = is_internal[dst] \
                & ~low_none[dst] & (low[dst] == low[src]) \
                & ~high_none[dst] & (high[dst] == high[src]) & ~position_none[dst]
            # predecessor: the previous internal vertex, or the low branch vertex
            # exactly at position 1
            prev_is_branch = is_branch[dst] & (bindex[dst] == low[src]) \
                & (prev[src] == branch_low_id[src])
            prev_is_chain = chain & (position[dst] == position[src] - 1)
            first_position = (position == 1)[src]
            prev_ok = segment_any(
                prev_edge & np.where(first_position, prev_is_branch, prev_is_chain),
                starts)
            # successor: the next internal vertex, or the high branch vertex
            next_is_branch = is_branch[dst] & (bindex[dst] == high[src]) \
                & (nxt[src] == branch_high_id[src])
            next_is_chain = chain & (position[dst] == position[src] + 1)
            next_ok = segment_any(next_edge & (next_is_branch | next_is_chain), starts)
            internal_accept = fields_ok & range_ok & pair_ok & position_ok \
                & prev_ok & next_ok

        accept &= ~has_role | np.where(is_branch, branch_accept, internal_accept)
        return accept, fallback


# ----------------------------------------------------------------------
# planarity: a full kernel (every phase of Algorithm 2 as array passes)
# ----------------------------------------------------------------------
#: give up on the certificate-visibility join when the flattened
#: (viewer, edge certificate) pair set exceeds this multiple of the CSR size
#: — adversarial assignments can stuff one node's certificate list; the
#: kernel then degrades to its spanning-tree prefilter with wholesale
#: survivor fallback (the PR-3 contract) instead of materialising the join
_JOIN_BUDGET_FACTOR = 64

#: composite-key stride for per-viewer index lookups: a valid ``G_{T,f}``
#: index is at most ``2 * total - 1 < 2**32`` (``total`` is bounded by the
#: compiler's INT_LIMIT), so ``viewer * 2**32 + index`` is collision-free
#: inside int64 for every index that can still matter (out-of-range indices
#: are encoded as 0, which only ever collides on nodes the range conjuncts
#: already rejected)
_INDEX_ENC = 1 << 32

_INT64_MIN = np.iinfo(np.int64).min if HAVE_NUMPY else 0
_INT64_MAX = np.iinfo(np.int64).max if HAVE_NUMPY else 0


def _enc_index(values: Any) -> Any:
    """Clamp prospective ``G_{T,f}`` indices into the composite-key range."""
    return np.where((values >= 1) & (values < _INDEX_ENC), values, 0)


def _sorted_lookup(sorted_keys: Any, queries: Any) -> tuple[Any, Any]:
    """Binary-search ``queries`` in ``sorted_keys``: ``(positions, found)``.

    Positions are clamped into range so callers can gather parallel value
    arrays unconditionally; ``found`` is all-``False`` on an empty table.
    """
    if len(sorted_keys) == 0:
        zeros = np.zeros(len(queries), dtype=np.int64)
        return zeros, np.zeros(len(queries), dtype=bool)
    positions = np.minimum(np.searchsorted(sorted_keys, queries),
                           len(sorted_keys) - 1)
    return positions, sorted_keys[positions] == queries


class PlanarityKernel:
    """Full kernel of :class:`~repro.core.planarity_scheme.PlanarityScheme`.

    Every phase of Algorithm 2 runs as array passes, so both acceptance and
    rejection are final and ``fallback`` marks only views containing
    certificates without an exact array representation (plus the join-budget
    degradation below):

    1. *spanning tree* (Phase 2a) — the shared :func:`spanning_tree_accept`
       sub-check on the nested label columns, plus the 5-degeneracy cap;
    2. *collection* (Phase 1) — a (viewer, visible edge certificate) join:
       every certificate about an incident edge must resolve to a real
       neighbor, every incident edge must be covered, and all visible
       certificates for one edge must be equal (the compiler's content
       ``uids`` stand in for dataclass equality);
    3. *interval map* — the flattened ``(index, low, high)`` triples of the
       visible certificates, segment-sorted per viewer: indices in range,
       equal indices forced to equal intervals, first-of-group kept as a
       sorted per-viewer map for the later lookups
       (mirrors :func:`~repro.core.planarity_scheme.consistent_interval_map`);
    4. *DFS-mapping / Euler tour* (Phases 1b + 2b) — claimed copies and
       child spans collected per node, segment-sorted, deduplicated, and
       checked against the interleaving chain of
       :func:`~repro.core.dfs_mapping.euler_tour_locally_consistent`, with
       the root/parent ``f_min``/``f_max`` anchors;
    5. *Algorithm 1 simulation* (Phases 1c + 3) — chords grouped per copy by
       a second segmented sort; the path/virtual neighbors enter through the
       ``c ± 1`` encoding (the virtual vertex 0 *is* ``c - 1`` at the first
       copy, ``total + 1`` *is* ``c + 1`` at the last), and every conjunct of
       :func:`~repro.core.planarity_scheme.simulate_algorithm1` /
       :func:`~repro.core.po_scheme.algorithm1_check` becomes one boolean
       array over the copy or chord domain.

    When the visibility join would exceed its size budget the kernel
    degrades to the PR-3 prefilter contract for that call: the spanning-tree
    conjuncts stay final and every survivor is flagged for per-node fallback.
    """

    scheme_name = PlanarityScheme.name
    #: normal-mode granularity (see the degradation note in the docstring)
    coverage = "full"
    #: small batched chunks: the visibility join materialises ~deg² pairs
    #: per node across a dozen parallel arrays, so concatenated batches much
    #: past this fall out of the last-level cache and lose more to memory
    #: stalls than they save in per-call dispatch
    batch_node_budget = 18_000

    def supports(self, scheme: Any) -> bool:
        # prover-side parameters (embedding backend, spanning-tree builder,
        # root) never change the verifier; distribute_by_degeneracy does, and
        # accept_vector reads it, so both settings are supported
        return type(scheme) is PlanarityScheme and scheme.verification_radius == 1

    def table_specs(self) -> list[dict]:
        """The compiles :meth:`accept_vector` performs, declaratively.

        Consumed by :func:`repro.distributed.shm.export_assignment` to
        pre-compile and share exactly the tables this kernel will ask for.
        The early spanning-tree exit can make the edge-list table dead
        weight, but exporting it is still the right trade: the exporter
        compiles once while workers would each compile it per trial.
        """
        return [
            {"kind": "certificate",
             "certificate_type": PlanarityCertificate,
             "fields": PLANARITY_FIELDS},
            {"kind": "edge_list",
             "certificate_type": PlanarityCertificate,
             "list_name": "edge_certificates",
             "entry_types": (TreeEdgeCertificate, CotreeEdgeCertificate),
             "fields": EDGE_CERTIFICATE_FIELDS,
             "sublist": "intervals",
             "sublist_fields": INTERVAL_ENTRY_FIELDS,
             "sublist_max_len": MAX_INTERVAL_ENTRIES_PER_CERTIFICATE,
             "assign_uids": True},
        ]

    def accept_vector(self, ctx: VectorContext, scheme: Any,
                      certificates: dict[Any, Any]) -> tuple[Any, Any]:
        table = compile_certificates(ctx, certificates, PlanarityCertificate,
                                     PLANARITY_FIELDS)
        src, dst, starts = ctx.src, ctx.dst, ctx.starts
        ids = ctx.node_ids
        n = ctx.n
        m = len(dst)
        present = table.present
        parent = table.columns["parent_id"]
        parent_none = table.isnone["parent_id"]
        fallback = view_fallback(ctx, table)

        tracer = current_tracer()
        prefix = "kernel:" + self.scheme_name + "/"
        # ---- phase 1: spanning tree (Phase 2a) ----------------------------
        with tracer.span(prefix + "spanning_tree"):
            accept = spanning_tree_accept(ctx, table)
        if not accept.any():
            # the common adversarial case (forged-pool attacks): every node
            # already died in the spanning-tree phase, whose decision reads
            # only the node-level columns — skip compiling the edge lists
            # entirely.  The one reference step that precedes its
            # spanning-tree check is the degeneracy-cap ``len()`` probe,
            # which raises on a certificate whose edge list is not a
            # sequence; conservatively route such holders to the fallback so
            # the exception is reproduced.
            if scheme.distribute_by_degeneracy:
                get = certificates.get
                raisers = bytearray(n)
                for i, label in enumerate(ctx.labels):
                    certificate = get(label)
                    if type(certificate) is PlanarityCertificate and \
                            type(certificate.edge_certificates) is not tuple:
                        raisers[i] = True
                if any(raisers):
                    fallback |= np.frombuffer(raisers, dtype=np.uint8).astype(bool)
            return accept, fallback

        edges = compile_edge_lists(ctx, certificates, PlanarityCertificate,
                                   "edge_certificates",
                                   (TreeEdgeCertificate, CotreeEdgeCertificate),
                                   EDGE_CERTIFICATE_FIELDS,
                                   sublist="intervals",
                                   sublist_fields=INTERVAL_ENTRY_FIELDS,
                                   sublist_max_len=MAX_INTERVAL_ENTRIES_PER_CERTIFICATE,
                                   assign_uids=True)
        bad = edges.unrepresentable
        fallback |= bad | segment_any(bad[dst], starts)

        # ---- the degeneracy cap -------------------------------------------
        if scheme.distribute_by_degeneracy:
            # planar graphs are 5-degenerate; the honest prover never charges
            # more certificates to a node, and the verifier enforces it
            accept &= edges.counts <= MAX_EDGE_CERTIFICATES_PER_NODE

        with tracer.span(prefix + "visibility_join") as sp:
            join = self._visible_pairs(ctx, edges)
            if sp:
                sp.set(over_budget=join is None,
                       pairs=0 if join is None else int(len(join[0])))
        if join is None:
            # join budget exceeded: degrade to the prefilter contract — the
            # conjuncts so far are necessary conditions, survivors fall back
            fallback |= accept
            return accept, fallback
        viewer, entry = join

        # ---- phase 2: collection — keys, coverage, conflicts (Phase 1) ----
        with tracer.span(prefix + "collection"):
            id_a_all = edges.columns["id_a"][entry]
            id_b_all = edges.columns["id_b"][entry]
            incident = (id_a_all == ids[viewer]) | (id_b_all == ids[viewer])
            # only incident pairs enter the reference's collection (the rest
            # are skipped with ``continue``), and they are the minority of the
            # visibility join — filter before the binary-search resolutions
            inc = incident.nonzero()[0]
            iv, ie = viewer[inc], entry[inc]
            id_a, id_b = id_a_all[inc], id_b_all[inc]
            viewer_id = ids[iv]
            # identifiers are distinct and below 2**62, so the endpoint sum
            # recovers "the other endpoint" without overflow
            other_id = id_a + id_b - viewer_id
            proper = other_id != viewer_id

            # resolve the other endpoint to a node index, then to the directed
            # CSR edge (viewer, other); certificates whose collection key is
            # not a genuine neighbor make the reference coverage check fail,
            # so a resolution miss rejects the viewer.  resolve_ids is
            # network-local on a BatchedContext, which is all that keeps this
            # phase (and every composite-key phase below, already keyed by
            # global node index) batch-correct.
            other, id_found = ctx.resolve_ids(iv, other_id)
            resolved = proper & id_found
            edge_order, sorted_keys = ctx.edge_index()
            position, edge_found = _sorted_lookup(sorted_keys, iv * n + other)
            adjacent = resolved & edge_found
            edge_at = edge_order[position]

            accept &= ~scatter_any(~adjacent, iv, n)
            keep = adjacent
            pv, pe, pj = iv[keep], ie[keep], edge_at[keep]
            covered = scatter_any(np.ones(len(pj), dtype=bool), pj, m)
            # representative entry per covered directed edge, and the conflict
            # check against it: the content uids of all visible matches must
            # agree (uid equality is dataclass equality)
            rep = np.zeros(m, dtype=np.int64)
            rep[pj] = pe
            uid = edges.uids
            conflict = scatter_any(uid[pe] != uid[rep[pj]], pj, m)
            accept &= segment_all(covered & ~conflict, starts)
        if not accept.any():
            return accept, fallback
        with tracer.span(prefix + "collection"):
            ew_tree = edges.columns["is_tree"][rep].astype(bool)
            ew_ida = edges.columns["id_a"][rep]
            ew_xa = edges.columns["idx_a"][rep]
            ew_xb = edges.columns["idx_b"][rep]
            vid, oid = ids[src], ids[dst]

            # ---- phase 3: kind/orientation against the tree labels (1b) ---
            need_parent = ~parent_none[src] & (oid == parent[src])
            need_child = present[dst] & ~parent_none[dst] \
                & (parent[dst] == ids[src])
            parent_form = ew_tree & (ew_ida == oid)
            child_form = ew_tree & (ew_ida == vid)
            edge_ok = covered & ~conflict & np.where(
                need_parent, parent_form,
                np.where(need_child, child_form, ~ew_tree))
            # a neighbor that is both my claimed parent and claims me as
            # parent can never be covered consistently (the reference's
            # child-span coverage check): the parent branch wins and the
            # child set mismatches
            accept &= segment_all(edge_ok & ~(need_parent & need_child), starts)

        total = table.columns["total"]
        n_path = 2 * total - 1

        # ---- phase 4: interval-map range, consistency, and lookup table ---
        with tracer.span(prefix + "interval_map"):
            sub = edges.sub
            t_count = sub.counts[pe]
            t_viewer = np.repeat(pv, t_count)
            t_slot = _concat_ranges(sub.offsets[pe], t_count)
            t_index = sub.columns["index"][t_slot]
            t_low = sub.columns["low"][t_slot]
            t_high = sub.columns["high"][t_slot]
            accept &= ~scatter_any((t_index < 1) | (t_index > n_path[t_viewer]),
                                   t_viewer, n)
            # consistency: sort by the (viewer, index) key alone and compare
            # every triple against the first of its group — one single-key
            # argsort instead of a three-key lexsort, same rejections
            t_key = t_viewer * _INDEX_ENC + _enc_index(t_index)
            t_order = np.argsort(t_key, kind="stable")
            key_s = t_key[t_order]
            low_s, high_s = t_low[t_order], t_high[t_order]
            group_first = np.ones(len(key_s), dtype=bool)
            group_first[1:] = key_s[1:] != key_s[:-1]
            positions = np.arange(len(key_s), dtype=np.int64)
            first_of_group = np.maximum.accumulate(
                np.where(group_first, positions, 0))
            mismatch = (low_s != low_s[first_of_group]) \
                | (high_s != high_s[first_of_group])
            accept &= ~scatter_any(mismatch, t_viewer[t_order], n)
            map_keys = key_s[group_first]
            map_low = low_s[group_first]
            map_high = high_s[group_first]

        def interval_lookup(q_viewer: Any, q_index: Any) -> tuple[Any, Any, Any]:
            """``(found, low, high)`` of the per-viewer interval map."""
            valid = (q_index >= 1) & (q_index < _INDEX_ENC)
            positions, found = _sorted_lookup(
                map_keys, q_viewer * _INDEX_ENC + np.where(valid, q_index, 0))
            if len(map_keys) == 0:
                return found, positions, positions.copy()
            return valid & found, map_low[positions], map_high[positions]

        # ---- phase 5: claimed copies and the Euler-tour chain (1b + 2b) ---
        with tracer.span(prefix + "euler_tour"):
            tree_e = need_parent | need_child
            copy_a = np.where(need_parent, ew_xa + 1, ew_xa)
            copy_b = np.where(need_parent, ew_xb, ew_xb + 1)
            item_node = np.concatenate([src[tree_e], src[tree_e]])
            item_val = np.concatenate([copy_a[tree_e], copy_b[tree_e]])
            accept &= ~scatter_any(
                (item_val < 1) | (item_val > n_path[item_node]), item_node, n)
            # sort + dedup on the composite (node, encoded value) key:
            # encoding equals the raw value everywhere the range conjunct
            # above holds, and nodes where it does not are already rejected,
            # so the encoded copy values feed every later phase unchanged
            item_key = item_node * _INDEX_ENC + _enc_index(item_val)
            item_order = np.argsort(item_key, kind="stable")
            ik_s = item_key[item_order]
            unique_first = np.ones(len(ik_s), dtype=bool)
            unique_first[1:] = ik_s[1:] != ik_s[:-1]
            u_key = ik_s[unique_first]
            u_node, u_val = u_key // _INDEX_ENC, u_key % _INDEX_ENC
            u_counts = np.bincount(u_node, minlength=n)
            u_offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(u_counts, out=u_offsets[1:])
            has_copies = u_counts > 0
            accept &= has_copies  # euler_tour_locally_consistent, empty set
            f_min = np.zeros(n, dtype=np.int64)
            f_max = np.zeros(n, dtype=np.int64)
            f_min[has_copies] = u_val[u_offsets[:-1][has_copies]]
            f_max[has_copies] = u_val[u_offsets[1:][has_copies] - 1]

            # the Euler-tour chain: child spans sorted by start must
            # interleave the sorted unique copies exactly
            # (euler_tour_locally_consistent)
            span_e = need_child & ~need_parent
            sp_node = src[span_e]
            sp_min = ew_xa[span_e] + 1
            sp_max = ew_xb[span_e]
            accept &= ~scatter_any(sp_min > sp_max, sp_node, n)
            accept &= u_counts == np.bincount(sp_node, minlength=n) + 1
            span_order = np.argsort(sp_node * _INDEX_ENC + _enc_index(sp_min),
                                    kind="stable")
            sn_s = sp_node[span_order]
            smin_s, smax_s = sp_min[span_order], sp_max[span_order]
            partner = u_offsets[:-1][sn_s] + segment_rank(sn_s) + 1
            partner = np.minimum(partner, max(len(u_val) - 1, 0))
            chain_ok = (smax_s + 1 == u_val[partner]) \
                & (smin_s == u_val[partner - 1] + 1)
            accept &= ~scatter_any(~chain_ok, sn_s, n)
            # root / parent anchors on f_min and f_max
            p_xa = np.zeros(n, dtype=np.int64)
            p_xb = np.zeros(n, dtype=np.int64)
            p_xa[src[need_parent]] = ew_xa[need_parent]
            p_xb[src[need_parent]] = ew_xb[need_parent]
            accept &= np.where(parent_none,
                               (f_min == 1) & (f_max == n_path),
                               (f_min == p_xa + 1) & (f_max == p_xb))
        if not accept.any():
            return accept, fallback

        # ---- phase 6: chords onto copies (Phase 1c) -----------------------
        with tracer.span(prefix + "chords"):
            chord_e = covered & ~ew_tree
            my_copy = np.where(ew_ida == vid, ew_xa, ew_xb)
            other_copy = np.where(ew_ida == vid, ew_xb, ew_xa)
            ch_node = src[chord_e]
            ch_c = my_copy[chord_e]
            ch_x = other_copy[chord_e]
            accept &= ~scatter_any((ch_x < 1) | (ch_x > n_path[ch_node]),
                                   ch_node, n)
            # my_copy must be one of my claimed copies; resolve it to its
            # slot in the unique-copy domain (u_key is already the sorted
            # composite key, so positions are slots) for the per-copy
            # grouping below
            u_pos, u_found = _sorted_lookup(
                u_key, ch_node * _INDEX_ENC + _enc_index(ch_c))
            member = u_found & (ch_c >= 1) & (ch_c < _INDEX_ENC)
            accept &= ~scatter_any(~member, ch_node, n)
            # only member chords proceed: a garbage slot must not leak a
            # chord onto another node's copy
            ch_slot = u_pos[member]
            ch_x = ch_x[member]

        # ---- phase 7: Algorithm 1 at every copy (Phase 3) -----------------
        with tracer.span(prefix + "algorithm1"):
            cp_v, cp_c = u_node, u_val
            cp_np = n_path[cp_v]
            own_found, cp_a, cp_b = interval_lookup(cp_v, cp_c)
            bad_cp = ~own_found
            bad_cp |= ~((cp_a < cp_c) & (cp_c < cp_b))
            down_found, na_dn, nb_dn = interval_lookup(cp_v, cp_c - 1)
            up_found, na_up, nb_up = interval_lookup(cp_v, cp_c + 1)
            bad_cp |= (cp_c - 1 >= 1) & ~down_found
            bad_cp |= (cp_c + 1 <= cp_np) & ~up_found
            # every neighbor lies inside [a, b]; the virtual vertices 0 and
            # total + 1 are exactly c - 1 at the first copy and c + 1 at the last
            bad_cp |= ~((cp_a <= cp_c - 1) & (cp_c + 1 <= cp_b))

            # per-copy chord blocks via a segmented sort by (slot, target)
            chord_order = np.argsort(ch_slot * _INDEX_ENC + _enc_index(ch_x),
                                     kind="stable")
            cs_s = ch_slot[chord_order]
            x_s = ch_x[chord_order]
            cc_s = u_val[cs_s]
            node_s = u_node[cs_s]
            a_s, b_s = cp_a[cs_s], cp_b[cs_s]
            n_copies = len(u_val)
            x_found, na_x, nb_x = interval_lookup(node_s, x_s)
            bad_ch = ~x_found
            bad_ch |= (x_s == cc_s) | (x_s == cc_s - 1) | (x_s == cc_s + 1)
            bad_ch |= ~((a_s <= x_s) & (x_s <= b_s))
            # duplicates and the consecutive-neighbor interval chains (lines 6-9)
            same_slot = cs_s[1:] == cs_s[:-1]
            bad_ch[1:] |= same_slot & (x_s[1:] == x_s[:-1])
            pair_above = same_slot & (x_s[:-1] > cc_s[:-1])
            above_ok = (na_x[:-1] == cc_s[:-1]) & (nb_x[:-1] == x_s[1:])
            pair_below = same_slot & (x_s[1:] < cc_s[1:])
            below_ok = (na_x[1:] == x_s[:-1]) & (nb_x[1:] == cc_s[1:])
            bad_ch[1:] |= (pair_above & ~above_ok) | (pair_below & ~below_ok)

            # extreme chords per copy (for lines 6-13)
            above = x_s > cc_s
            below = x_s < cc_s
            exists_above = np.zeros(n_copies, dtype=bool)
            exists_above[cs_s[above]] = True
            exists_below = np.zeros(n_copies, dtype=bool)
            exists_below[cs_s[below]] = True
            min_above = np.full(n_copies, _INT64_MAX, dtype=np.int64)
            np.minimum.at(min_above, cs_s[above], x_s[above])
            max_above = np.full(n_copies, _INT64_MIN, dtype=np.int64)
            np.maximum.at(max_above, cs_s[above], x_s[above])
            min_below = np.full(n_copies, _INT64_MAX, dtype=np.int64)
            np.minimum.at(min_below, cs_s[below], x_s[below])
            max_below = np.full(n_copies, _INT64_MIN, dtype=np.int64)
            np.maximum.at(max_below, cs_s[below], x_s[below])

            # lines 6-7 / 8-9 head links: the path neighbor bounds the nearest
            # chord on each side
            bad_cp |= exists_above & ~((na_up == cp_c) & (nb_up == min_above))
            bad_cp |= exists_below & ~((na_dn == max_below) & (nb_dn == cp_c))
            # lines 10-11: the largest neighbor, when strictly inside [a, b],
            # shares I(x); the largest is the topmost chord, else c + 1 (which is
            # the virtual total + 1 — interval None, hence an outright reject —
            # exactly at the last copy)
            _, na_top, nb_top = interval_lookup(cp_v, max_above)
            bad_cp |= exists_above & (max_above < cp_b) \
                & ~((na_top == cp_a) & (nb_top == cp_b))
            virtual_up = cp_c == cp_np
            bad_cp |= ~exists_above & (cp_c + 1 < cp_b) \
                & (virtual_up | ~((na_up == cp_a) & (nb_up == cp_b)))
            # lines 12-13: symmetric for the smallest neighbor (virtual 0 at the
            # first copy)
            _, na_bot, nb_bot = interval_lookup(cp_v, min_below)
            bad_cp |= exists_below & (min_below > cp_a) \
                & ~((na_bot == cp_a) & (nb_bot == cp_b))
            virtual_dn = cp_c == 1
            bad_cp |= ~exists_below & (cp_c - 1 > cp_a) \
                & (virtual_dn | ~((na_dn == cp_a) & (nb_dn == cp_b)))

            # lines 14-17: neighbors whose interval is delimited by the copy must
            # point at another neighbor and be strictly contained in I(x)
            chord_member_keys = np.sort(cs_s * _INDEX_ENC + _enc_index(x_s))

            def neighbor_member(slots: Any, copies: Any, others: Any) -> Any:
                """Is ``others`` in the copy's neighbor set (path, virtual, chord)?"""
                on_path = (others == copies - 1) | (others == copies + 1)
                valid = (others >= 1) & (others < _INDEX_ENC)
                _, found = _sorted_lookup(
                    chord_member_keys,
                    slots * _INDEX_ENC + np.where(valid, others, 0))
                return on_path | (valid & found)

            copy_slots = np.arange(n_copies, dtype=np.int64)
            for applicable, na_r, nb_r in (
                    ((cp_c - 1 >= 1) & down_found, na_dn, nb_dn),
                    ((cp_c + 1 <= cp_np) & up_found, na_up, nb_up)):
                delimited = applicable & ((na_r == cp_c) | (nb_r == cp_c))
                partner_r = np.where(na_r == cp_c, nb_r, na_r)
                contained = neighbor_member(copy_slots, cp_c, partner_r) \
                    & (cp_a <= na_r) & (nb_r <= cp_b) \
                    & ~((na_r == cp_a) & (nb_r == cp_b))
                bad_cp |= delimited & ~contained
            delimited = x_found & ((na_x == cc_s) | (nb_x == cc_s))
            partner_x = np.where(na_x == cc_s, nb_x, na_x)
            contained = neighbor_member(cs_s, cc_s, partner_x) \
                & (a_s <= na_x) & (nb_x <= b_s) & ~((na_x == a_s) & (nb_x == b_s))
            bad_ch |= delimited & ~contained

            accept &= ~scatter_any(bad_cp, cp_v, n)
            accept &= ~scatter_any(bad_ch, node_s, n)
        return accept, fallback

    @staticmethod
    def _visible_pairs(ctx: VectorContext, edges: Any):
        """The (viewer, entry) visibility join, or ``None`` over budget.

        Every edge-certificate entry is visible at its holder and at each of
        the holder's neighbors — exactly the certificates the reference
        verifier's collection phase walks at one node.
        """
        n = ctx.n
        counts = edges.counts
        entries_total = int(counts.sum())
        if entries_total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        holder = np.repeat(np.arange(n), counts)
        pair_sizes = ctx.degrees[holder] + 1
        if int(pair_sizes.sum()) > _JOIN_BUDGET_FACTOR * (len(ctx.dst) + n):
            return None
        per_edge = counts[ctx.dst]
        viewer = np.concatenate([holder, np.repeat(ctx.src, per_edge)])
        entry = np.concatenate([np.arange(entries_total),
                                _concat_ranges(edges.offsets[ctx.dst], per_edge)])
        return viewer, entry


def _concat_ranges(starts: Any, lengths: Any) -> Any:
    """Concatenate ``arange(starts[i], starts[i] + lengths[i])`` blocks."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    nonzero = lengths > 0
    starts = starts[nonzero]
    lengths = lengths[nonzero]
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    block_ends = np.cumsum(lengths)[:-1]
    out[block_ends] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)
