"""Cutting a planar graph open along a spanning tree (Section 3.2 of the paper).

Given a planar graph ``G`` with a rotation-system embedding, a spanning tree
``T`` rooted at ``r``, the paper defines:

* the **DFS-mapping** ``f : {1, .., 2n-1} -> V(T)``: an Euler tour of ``T``
  that descends into children following the counterclockwise rotation order
  (Definition in Section 3.2); every node ``v`` receives ``deg_T(v)`` copies
  (``deg_T(r) + 1`` for the root);
* the **induced graph** ``G_{T,f}`` (Definition 2): the path
  ``1 - 2 - ... - (2n-1)`` plus, for every cotree edge ``{u, v}`` of ``G``,
  one edge between a copy of ``u`` and a copy of ``v``.  Lemma 3 shows that
  when the copies are chosen according to the angular sector in which the
  cotree edge leaves each endpoint (the *type* ``tau`` of the paper), the
  induced graph is path-outerplanar; Lemma 4 shows the converse: if *some*
  induced graph is path-outerplanar then ``G`` is planar.

This module computes ``f``, the types, ``G_{T,f}``, and the contraction that
recovers ``G`` (used to exercise Lemma 4).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.exceptions import EmbeddingError, GraphError
from repro.graphs.embedding import RotationSystem
from repro.graphs.graph import Graph, Node, edge_key
from repro.graphs.planarity import compute_planar_embedding
from repro.graphs.spanning_tree import RootedTree, bfs_spanning_tree
from repro.graphs.validation import require_connected

__all__ = ["DFSMapping", "TreeEdgeImage", "PlanarCutDecomposition", "cut_open",
           "euler_tour_locally_consistent"]


def euler_tour_locally_consistent(copies: set[int],
                                  child_spans: list[tuple[int, int]]) -> bool:
    """Local Euler-tour consistency of one node's claimed copies (Phase 2b).

    A node of the Theorem 1 verifier knows its claimed copy indices
    (``f^{-1}`` of itself, reconstructed from the visible edge certificates)
    and, for every tree child, the index span ``[child_min, child_max]``
    that child's subtree claims to occupy.  In a genuine DFS-mapping the
    copies and spans interleave exactly: the first copy is followed by the
    first child's whole span, then the next copy, the next span, and so on
    — so the sorted copies must equal ``[f_min, span_1.max + 1, ...,
    span_m.max + 1]`` with ``span_k.min == previous copy + 1``.

    This is the pure chain predicate shared between the reference verifier
    (:func:`repro.core.planarity_scheme.reconstruct_local_structure`) and
    the vectorized planarity kernel, which evaluates the same conditions for
    all nodes at once with per-node segmented sorts
    (:func:`repro.vectorized.kernels.segment_sort`).  The root/parent anchor
    (``f_min``/``f_max`` against the parent edge's indices) stays with the
    callers — it needs the parent certificate, not the tour shape.

    Ties among span starts make the chain unsatisfiable in every order, so
    the predicate is order-insensitive even though Python's sort breaks such
    ties arbitrarily.
    """
    if not copies:
        return False
    copies_sorted = sorted(copies)
    expected = [copies_sorted[0]]
    for child_min, child_max in sorted(child_spans):
        if child_min > child_max:
            return False
        if child_min != expected[-1] + 1:
            return False
        expected.append(child_max + 1)
    return copies_sorted == expected


@dataclass(frozen=True)
class TreeEdgeImage:
    """The two path edges of ``G_{T,f}`` onto which a tree edge is mapped.

    ``descend_index`` is the index ``i`` such that the path edge
    ``{i, i + 1}`` realises the parent-to-child traversal
    (``f(i) = parent``, ``f(i+1) = child``); ``return_index`` is the index
    ``j`` of the child-to-parent traversal (``f(j) = child``,
    ``f(j+1) = parent``).
    """

    parent: Node
    child: Node
    descend_index: int
    return_index: int

    def path_edges(self) -> tuple[tuple[int, int], tuple[int, int]]:
        """Return the two path edges as index pairs."""
        return ((self.descend_index, self.descend_index + 1),
                (self.return_index, self.return_index + 1))


@dataclass
class DFSMapping:
    """The DFS-mapping ``f`` of a rooted spanning tree following a rotation system."""

    root: Node
    f: dict[int, Node]
    copies: dict[Node, list[int]]
    children_order: dict[Node, list[Node]]

    @property
    def path_length(self) -> int:
        """Return ``2n - 1``, the number of indices."""
        return len(self.f)

    def first_copy(self, node: Node) -> int:
        """Return ``f^{-1}_min(node)`` (first visit)."""
        return self.copies[node][0]

    def last_copy(self, node: Node) -> int:
        """Return ``f^{-1}_max(node)`` (last visit)."""
        return self.copies[node][-1]


@dataclass
class PlanarCutDecomposition:
    """Everything produced by cutting a planar graph open along a spanning tree."""

    graph: Graph
    tree: RootedTree
    rotation: RotationSystem
    mapping: DFSMapping
    tree_edge_images: dict[tuple[Node, Node], TreeEdgeImage] = field(default_factory=dict)
    cotree_edge_images: dict[tuple[Node, Node], tuple[int, int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def path_length(self) -> int:
        """Number of vertices of ``G_{T,f}`` (``2n - 1``)."""
        return self.mapping.path_length

    def induced_edges(self) -> list[tuple[int, int]]:
        """Return all edges of ``G_{T,f}`` (path edges plus mapped cotree edges)."""
        n_path = self.path_length
        edges = [(i, i + 1) for i in range(1, n_path)]
        edges.extend(sorted((min(i, j), max(i, j))
                            for i, j in self.cotree_edge_images.values()))
        return edges

    def induced_graph(self) -> Graph:
        """Return ``G_{T,f}`` as a :class:`Graph` on nodes ``1 .. 2n-1``."""
        graph = Graph(nodes=range(1, self.path_length + 1))
        graph.add_edges_from(self.induced_edges())
        return graph

    def chord_intervals(self) -> list[tuple[int, int]]:
        """Return the mapped cotree edges as rank intervals (the chords of the witness)."""
        return [(min(i, j), max(i, j)) for i, j in self.cotree_edge_images.values()]

    def contract_copies(self) -> Graph:
        """Contract every set of copies back to its original node (Lemma 4 direction).

        The result is exactly the original graph ``G`` (up to the node
        labels, which are preserved).
        """
        owner: dict[int, Node] = {}
        for node, indices in self.mapping.copies.items():
            for index in indices:
                owner[index] = node
        contracted = Graph(nodes=self.graph.nodes())
        for i, j in self.induced_edges():
            u, v = owner[i], owner[j]
            if u != v:
                contracted.add_edge(u, v)
        return contracted

    def copy_owner(self, index: int) -> Node:
        """Return the original node that index ``index`` is a copy of."""
        return self.mapping.f[index]


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def _tree_neighbors(tree: RootedTree, node: Node) -> set[Node]:
    neighbors = set(tree.children(node))
    parent = tree.parent(node)
    if parent is not None:
        neighbors.add(parent)
    return neighbors


def _children_in_rotation_order(rotation: RotationSystem, tree: RootedTree,
                                node: Node) -> list[Node]:
    """Return the tree children of ``node`` ordered by the rotation.

    For a non-root node the order starts immediately after the parent edge in
    the rotation; for the root it starts at the first tree child appearing in
    the stored rotation (the virtual parent edge ``{r, r'}`` of Lemma 3 is
    placed immediately before that child).
    """
    tree_children = set(tree.children(node))
    if not tree_children:
        return []
    parent = tree.parent(node)
    if parent is not None:
        order = rotation.rotation_from(node, parent)[1:]
    else:
        full = rotation.rotation(node)
        first_child = next(nb for nb in full if nb in tree_children)
        order = rotation.rotation_from(node, first_child)
    return [nb for nb in order if nb in tree_children]


def _euler_tour(root: Node, children_order: dict[Node, list[Node]],
                ) -> tuple[dict[int, Node], dict[Node, list[int]]]:
    f: dict[int, Node] = {}
    copies: dict[Node, list[int]] = defaultdict(list)
    index = 1
    f[index] = root
    copies[root].append(index)
    stack: list[tuple[Node, int]] = [(root, 0)]
    while stack:
        node, child_pos = stack[-1]
        children = children_order[node]
        if child_pos < len(children):
            stack[-1] = (node, child_pos + 1)
            child = children[child_pos]
            index += 1
            f[index] = child
            copies[child].append(index)
            stack.append((child, 0))
        else:
            stack.pop()
            if stack:
                parent = stack[-1][0]
                index += 1
                f[index] = parent
                copies[parent].append(index)
    return f, dict(copies)


def _cotree_types_at_node(rotation: RotationSystem, tree: RootedTree,
                          mapping: DFSMapping, node: Node) -> dict[Node, int]:
    """Return, for every cotree neighbor of ``node``, the copy index it attaches to.

    The copy is determined by the angular sector of the cotree edge: walking
    along the rotation (in the same direction used to order the DFS
    children), the first tree edge encountered after the cotree edge carries
    the copy from which the DFS departs along that tree edge (the ``tau``
    types of Lemma 3).  The parent edge — or, at the root, the virtual edge
    ``{r, r'}`` — carries the last copy.
    """
    children = mapping.children_order[node]
    copies = mapping.copies[node]
    tree_children = set(children)
    parent = tree.parent(node)
    all_neighbors = rotation.rotation(node)
    cotree_neighbors = [nb for nb in all_neighbors
                        if nb not in tree_children and nb != parent]
    if not cotree_neighbors:
        return {}

    # linearise the rotation so that the "closing" edge (parent edge, or the
    # virtual parent edge at the root) sits at the very end of the list
    if parent is not None:
        linear = rotation.rotation_from(node, parent)[1:]
    elif children:
        first_child = children[0]
        linear = rotation.rotation_from(node, first_child)
    else:
        linear = list(all_neighbors)

    # copy index carried by each tree-edge marker
    marker_copy: dict[Node, int] = {}
    for child_position, child in enumerate(children):
        marker_copy[child] = copies[child_position]
    closing_copy = copies[-1]

    types: dict[Node, int] = {}
    positions = {neighbor: position for position, neighbor in enumerate(linear)}
    for cotree_neighbor in cotree_neighbors:
        position = positions[cotree_neighbor]
        assigned = closing_copy
        for later in linear[position + 1:]:
            if later in marker_copy:
                assigned = marker_copy[later]
                break
        types[cotree_neighbor] = assigned
    return types


def cut_open(graph: Graph, rotation: RotationSystem | None = None,
             tree: RootedTree | None = None, root: Node | None = None,
             embedding_backend: str = "networkx") -> PlanarCutDecomposition:
    """Cut a planar graph open along a spanning tree (Lemma 3 construction).

    Parameters
    ----------
    graph:
        A connected planar graph.
    rotation:
        A planar rotation system of ``graph``; computed when omitted.
    tree:
        A spanning tree of ``graph``; a BFS tree is used when omitted.
    root:
        Root for the default spanning tree (ignored when ``tree`` is given).

    Returns the full decomposition: the DFS-mapping ``f``, the images of tree
    and cotree edges in ``G_{T,f}``, and helpers to materialise ``G_{T,f}``
    or contract it back to ``G``.
    """
    require_connected(graph, context="cut_open")
    if rotation is None:
        rotation = compute_planar_embedding(graph, backend=embedding_backend)
    if tree is None:
        start = root if root is not None else next(iter(graph.nodes()))
        tree = bfs_spanning_tree(graph, start)
    if not tree.spans(graph):
        raise GraphError("the provided tree is not a spanning tree of the graph")
    if set(rotation.nodes()) != set(graph.nodes()):
        raise EmbeddingError("the rotation system does not cover the graph's nodes")

    children_order = {node: _children_in_rotation_order(rotation, tree, node)
                      for node in graph.nodes()}
    f, copies = _euler_tour(tree.root, children_order)
    mapping = DFSMapping(root=tree.root, f=f, copies=copies, children_order=children_order)

    # images of tree edges: descend / return path edges
    tree_edge_images: dict[tuple[Node, Node], TreeEdgeImage] = {}
    for node in graph.nodes():
        for child_position, child in enumerate(children_order[node]):
            descend_index = copies[node][child_position]
            return_index = copies[child][-1]
            image = TreeEdgeImage(parent=node, child=child,
                                  descend_index=descend_index, return_index=return_index)
            tree_edge_images[edge_key(node, child)] = image

    # images of cotree edges via the angular types
    types_per_node = {node: _cotree_types_at_node(rotation, tree, mapping, node)
                      for node in graph.nodes()}
    cotree_edge_images: dict[tuple[Node, Node], tuple[int, int]] = {}
    for u, v in graph.edges():
        if tree.has_edge(u, v):
            continue
        key = edge_key(u, v)
        first, second = key
        cotree_edge_images[key] = (types_per_node[first][second], types_per_node[second][first])

    return PlanarCutDecomposition(
        graph=graph,
        tree=tree,
        rotation=rotation,
        mapping=mapping,
        tree_edge_images=tree_edge_images,
        cotree_edge_images=cotree_edge_images,
    )
