"""The proof-labeling scheme for path-outerplanarity (Lemma 2, Algorithm 1).

The certificate of a node consists of

1. the Hamiltonian-path fields of
   :class:`repro.core.building_blocks.HamiltonianPathLabel` (number of nodes,
   rank, root identifier, predecessor identifier) certifying that the ranks
   form a spanning path, and
2. the covering interval ``I(x)``: the shortest edge ``{v_a, v_b}`` with
   ``a < rank(x) < b`` (the sentinel ``(0, n + 1)`` when none exists).

The verifier is Algorithm 1 of the paper, implemented in
:func:`algorithm1_check`.  The function is deliberately standalone — it takes
only ranks and intervals — because the planarity scheme of Theorem 1 re-runs
it at every *virtual* node of the transformed graph ``G_{T,f}``
(see :mod:`repro.core.planarity_scheme`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.building_blocks import (
    HamiltonianPathLabel,
    check_hamiltonian_path_label,
    hamiltonian_path_labels,
)
from repro.core.path_outerplanar import (
    compute_covering_intervals,
    find_path_outerplanar_witness,
    is_path_outerplanar_witness,
)
from repro.distributed.certificates import BitWriter, Encodable
from repro.distributed.network import LocalView, Network
from repro.distributed.scheme import ProofLabelingScheme
from repro.exceptions import NotInClassError
from repro.graphs.graph import Graph, Node

__all__ = ["PathOuterplanarLabel", "algorithm1_check", "PathOuterplanarScheme"]

Interval = tuple[int, int]


@dataclass(frozen=True)
class PathOuterplanarLabel(Encodable):
    """Certificate of the Lemma 2 scheme: path fields plus the covering interval."""

    path: HamiltonianPathLabel
    interval: Interval

    @property
    def rank(self) -> int:
        """Rank of the node in the witness order."""
        return self.path.rank

    @property
    def total(self) -> int:
        """Number of nodes of the path."""
        return self.path.total

    def encode(self, writer: BitWriter) -> None:
        self.path.encode(writer)
        writer.write_uint(self.interval[0])
        writer.write_uint(self.interval[1])


def algorithm1_check(rank: int, total: int, interval: Interval,
                     neighbor_intervals: dict[int, Interval | None]) -> bool:
    """Algorithm 1 of the paper, executed at the node of the given ``rank``.

    Parameters
    ----------
    rank, total:
        Position of the node in the witness order and the total path length.
    interval:
        The node's own certified interval ``I(x) = (a, b)``.
    neighbor_intervals:
        For each *real* neighbor of the node (in the path-outerplanar graph),
        its certified rank mapped to its certified interval.  The virtual
        vertices ``0`` and ``total + 1`` of the paper (with interval
        ``[-inf, +inf]``) are added internally.

    Returns ``True`` when every check of Algorithm 1 passes.
    """
    if not 1 <= rank <= total:
        return False
    neighbors: dict[int, Interval | None] = dict(neighbor_intervals)
    if len(neighbors) != len(neighbor_intervals):
        return False
    if any(r == rank or not 0 < r <= total for r in neighbors):
        return False
    # path consistency: the predecessor/successor in the witness order are neighbors
    if rank > 1 and (rank - 1) not in neighbors:
        return False
    if rank < total and (rank + 1) not in neighbors:
        return False
    # the two virtual vertices of the paper, with interval [-inf, +inf]
    if rank == 1:
        neighbors[0] = None
    if rank == total:
        neighbors[total + 1] = None

    a, b = interval
    # line 5: a < x < b and every neighbor lies inside [a, b]
    if not a < rank < b:
        return False
    if any(not a <= r <= b for r in neighbors):
        return False

    larger = sorted(r for r in neighbors if r > rank)       # x+_0 < ... < x+_k
    smaller = sorted((r for r in neighbors if r < rank), reverse=True)  # x-_0 > ... > x-_l
    if not larger or not smaller:
        return False

    # lines 6-7: consecutive larger neighbors bound each other's interval
    for i in range(len(larger) - 1):
        if neighbors[larger[i]] != (rank, larger[i + 1]):
            return False
    # lines 8-9: symmetric check for the smaller neighbors
    for i in range(len(smaller) - 1):
        if neighbors[smaller[i]] != (smaller[i + 1], rank):
            return False
    # lines 10-11: the largest neighbor, when strictly inside [a, b], shares I(x)
    if larger[-1] < b and neighbors[larger[-1]] != (a, b):
        return False
    # lines 12-13: the smallest neighbor, when strictly inside [a, b], shares I(x)
    if smaller[-1] > a and neighbors[smaller[-1]] != (a, b):
        return False
    # lines 14-17: neighbors whose interval is delimited by x
    for r, nb_interval in neighbors.items():
        if nb_interval is None:
            continue
        na, nb = nb_interval
        if rank in (na, nb):
            other = nb if na == rank else na
            if other not in neighbors:
                return False
            # I(y) must be strictly contained in I(x)
            if not (a <= na and nb <= b and (na, nb) != (a, b)):
                return False
    return True


class PathOuterplanarScheme(ProofLabelingScheme):
    """Lemma 2: a 1-round PLS for path-outerplanarity with ``O(log n)``-bit certificates.

    The honest prover needs a path-outerplanarity witness.  Either supply it
    at construction time (``witness=`` a list of nodes) or let the prover
    search for one (exact only for small graphs, since finding a Hamiltonian
    path is NP-hard in general; the planarity scheme never needs the search
    because it constructs its witness explicitly).
    """

    name = "path-outerplanarity-pls"

    def __init__(self, witness: list[Node] | None = None) -> None:
        self.witness = witness

    # ------------------------------------------------------------------
    def is_member(self, graph: Graph) -> bool:
        if self.witness is not None:
            return is_path_outerplanar_witness(graph, self.witness)
        return find_path_outerplanar_witness(graph, raise_on_failure=True) is not None

    def prove(self, network: Network) -> dict[Node, PathOuterplanarLabel]:
        graph = network.graph
        witness = self.witness
        if witness is None:
            witness = find_path_outerplanar_witness(graph, raise_on_failure=True)
        if witness is None or not is_path_outerplanar_witness(graph, witness):
            raise NotInClassError("the network is not path-outerplanar (no valid witness)")
        n = len(witness)
        rank = {node: index + 1 for index, node in enumerate(witness)}
        chords = [(rank[u], rank[v]) for u, v in graph.edges()]
        intervals = compute_covering_intervals(n, chords, assume_laminar=True)
        path_labels = hamiltonian_path_labels(network, witness)
        return {
            node: PathOuterplanarLabel(path=path_labels[node], interval=intervals[rank[node]])
            for node in witness
        }

    def verify(self, view: LocalView) -> bool:
        own = view.certificate
        if not isinstance(own, PathOuterplanarLabel):
            return False
        neighbor_certs = {nid: view.neighbor_certificate(nid) for nid in view.neighbor_ids}
        if any(not isinstance(cert, PathOuterplanarLabel) for cert in neighbor_certs.values()):
            return False
        # part 1: the ranks form a spanning path (line 3 of Algorithm 1)
        path_ok = check_hamiltonian_path_label(
            view.center_id, own.path, {nid: cert.path for nid, cert in neighbor_certs.items()})
        if not path_ok:
            return False
        # part 2: the interval checks of Algorithm 1
        neighbor_intervals = {cert.rank: cert.interval for cert in neighbor_certs.values()}
        if len(neighbor_intervals) != len(neighbor_certs):
            return False
        return algorithm1_check(own.rank, own.total, own.interval, neighbor_intervals)
