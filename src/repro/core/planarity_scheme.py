"""The proof-labeling scheme for planarity (Theorem 1, Algorithm 2).

The honest prover, given a planar graph ``G``:

1. computes a planar rotation system, a spanning tree ``T`` and the
   DFS-mapping ``f`` / induced path-outerplanar graph ``G_{T,f}``
   (:mod:`repro.core.dfs_mapping`);
2. computes the Lemma 2 intervals ``I(i)`` of every vertex ``i`` of
   ``G_{T,f}``;
3. packs, for every edge of ``G``, an *edge certificate* describing the image
   of that edge in ``G_{T,f}`` together with the intervals of the mentioned
   vertices, and assigns each edge certificate to one endpoint using a
   degeneracy ordering (at most five per node, because planar graphs are
   5-degenerate);
4. adds the standard spanning-tree fields for ``T``.

The verifier (Algorithm 2) re-assembles, from its own certificate and its
neighbors' certificates, the copies ``f^{-1}(x)`` of the node, their
neighborhoods in ``G_{T,f}``, checks that ``T`` is a spanning tree and ``f``
a DFS-mapping of ``T``, and finally simulates Algorithm 1 (the
path-outerplanarity verifier) at every copy.  Soundness follows from Lemma 4:
if every node accepts then ``G_{T,f}`` is path-outerplanar for a genuine
spanning tree and DFS-mapping, hence ``G`` is planar.

Every certificate is ``O(log n)`` bits: a constant number of identifier and
index fields per edge certificate, and at most five edge certificates plus
one spanning-tree label per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.building_blocks import (
    SpanningTreeLabel,
    check_spanning_tree_label,
    spanning_tree_labels,
)
from repro.core.dfs_mapping import (
    PlanarCutDecomposition,
    cut_open,
    euler_tour_locally_consistent,
)
from repro.core.path_outerplanar import compute_covering_intervals
from repro.core.po_scheme import algorithm1_check
from repro.distributed.certificates import BitWriter, Encodable
from repro.distributed.network import LocalView, Network
from repro.distributed.scheme import ProofLabelingScheme
from repro.exceptions import NotInClassError, NotPlanarError
from repro.graphs.degeneracy import assign_edges_by_degeneracy
from repro.graphs.graph import Graph, Node, edge_key
from repro.graphs.planarity import compute_planar_embedding, is_planar
from repro.graphs.spanning_tree import RootedTree

__all__ = [
    "MAX_EDGE_CERTIFICATES_PER_NODE",
    "MAX_INTERVAL_ENTRIES_PER_CERTIFICATE",
    "TreeEdgeCertificate",
    "CotreeEdgeCertificate",
    "PlanarityCertificate",
    "PlanarityScheme",
    "LocalStructure",
    "reconstruct_local_structure",
    "consistent_interval_map",
    "simulate_algorithm1",
]

Interval = tuple[int, int]
IntervalEntries = tuple[tuple[int, int, int], ...]   # (index, low, high)

#: planar graphs are 5-degenerate, so the honest prover never charges more
#: than five edge certificates to a single node; the verifier enforces it.
MAX_EDGE_CERTIFICATES_PER_NODE = 5

#: an honest edge certificate mentions at most four ``G_{T,f}`` indices
#: (tree edges: descend/return plus successors; cotree edges: two copies),
#: so its interval list has at most four entries; the vectorized kernel
#: routes certificates with longer lists to the reference fallback,
#: with headroom so only truly foreign shapes leave the fast path
MAX_INTERVAL_ENTRIES_PER_CERTIFICATE = 8


def _encode_interval_entries(writer: BitWriter, entries: IntervalEntries) -> None:
    writer.write_uint(len(entries))
    for index, low, high in entries:
        writer.write_uint(index)
        writer.write_uint(low)
        writer.write_uint(high)


@dataclass(frozen=True)
class TreeEdgeCertificate(Encodable):
    """Certificate of one tree edge of ``G``: its two path edges in ``G_{T,f}``.

    ``descend_index`` is the index ``i`` with ``f(i) = parent`` and
    ``f(i+1) = child``; ``return_index`` is the index ``j`` with
    ``f(j) = child`` and ``f(j+1) = parent``.  ``intervals`` carries the
    Lemma 2 interval of every index mentioned by this certificate.
    """

    parent_id: int
    child_id: int
    descend_index: int
    return_index: int
    intervals: IntervalEntries

    @property
    def is_tree_edge(self) -> bool:
        return True

    def endpoint_ids(self) -> frozenset[int]:
        """Return the identifiers of the two endpoints of the edge.

        Memoised per instance: a certificate is inspected once per node that
        can see it and attacks re-evaluate the same immutable certificate
        objects across many trials, so the frozenset is built exactly once
        (``object.__setattr__`` bypasses the frozen-dataclass guard; the
        cache lives in ``__dict__`` and does not participate in equality).
        """
        cached = self.__dict__.get("_endpoints")
        if cached is None:
            cached = frozenset((self.parent_id, self.child_id))
            object.__setattr__(self, "_endpoints", cached)
        return cached

    def mentioned_indices(self) -> tuple[int, ...]:
        """Return the ``G_{T,f}`` indices this certificate refers to."""
        return (self.descend_index, self.descend_index + 1,
                self.return_index, self.return_index + 1)

    def encode(self, writer: BitWriter) -> None:
        writer.write_bool(True)
        writer.write_uint(self.parent_id)
        writer.write_uint(self.child_id)
        writer.write_uint(self.descend_index)
        writer.write_uint(self.return_index)
        _encode_interval_entries(writer, self.intervals)


@dataclass(frozen=True)
class CotreeEdgeCertificate(Encodable):
    """Certificate of one cotree edge of ``G``: its single chord in ``G_{T,f}``."""

    a_id: int
    b_id: int
    copy_a: int
    copy_b: int
    intervals: IntervalEntries

    @property
    def is_tree_edge(self) -> bool:
        return False

    def endpoint_ids(self) -> frozenset[int]:
        """Return the identifiers of the two endpoints of the edge (memoised)."""
        cached = self.__dict__.get("_endpoints")
        if cached is None:
            cached = frozenset((self.a_id, self.b_id))
            object.__setattr__(self, "_endpoints", cached)
        return cached

    def mentioned_indices(self) -> tuple[int, ...]:
        """Return the ``G_{T,f}`` indices this certificate refers to."""
        return (self.copy_a, self.copy_b)

    def copy_of(self, node_id: int) -> int:
        """Return the copy index at which the chord attaches to ``node_id``."""
        return self.copy_a if node_id == self.a_id else self.copy_b

    def encode(self, writer: BitWriter) -> None:
        writer.write_bool(False)
        writer.write_uint(self.a_id)
        writer.write_uint(self.b_id)
        writer.write_uint(self.copy_a)
        writer.write_uint(self.copy_b)
        _encode_interval_entries(writer, self.intervals)


EdgeCertificate = TreeEdgeCertificate | CotreeEdgeCertificate


@dataclass(frozen=True)
class PlanarityCertificate(Encodable):
    """Per-node certificate of the Theorem 1 scheme."""

    spanning_tree: SpanningTreeLabel
    edge_certificates: tuple[EdgeCertificate, ...]

    def encode(self, writer: BitWriter) -> None:
        self.spanning_tree.encode(writer)
        writer.write_uint(len(self.edge_certificates))
        for certificate in self.edge_certificates:
            certificate.encode(writer)


# ----------------------------------------------------------------------
# honest prover
# ----------------------------------------------------------------------
class PlanarityScheme(ProofLabelingScheme):
    """Theorem 1: a 1-round PLS for planarity with ``O(log n)``-bit certificates.

    Parameters
    ----------
    embedding_backend:
        Planarity/embedding backend used by the honest prover.
    spanning_tree_builder:
        Optional callable ``(graph, root) -> RootedTree`` used by the prover
        (ablation hook; BFS by default, inside :func:`cut_open`).
    distribute_by_degeneracy:
        When ``False`` the prover stores every edge certificate at *both*
        endpoints instead of only the degeneracy-smaller one — an ablation
        that roughly doubles certificate sizes but must not change any
        decision.
    """

    name = "planarity-pls"

    def __init__(self, embedding_backend: str = "networkx",
                 spanning_tree_builder=None,
                 root: Node | None = None,
                 distribute_by_degeneracy: bool = True) -> None:
        self.embedding_backend = embedding_backend
        self.spanning_tree_builder = spanning_tree_builder
        self.root = root
        self.distribute_by_degeneracy = distribute_by_degeneracy

    # ------------------------------------------------------------------
    def is_member(self, graph: Graph) -> bool:
        return is_planar(graph, backend=self.embedding_backend)

    def prove(self, network: Network) -> dict[Node, PlanarityCertificate]:
        graph = network.graph
        # Compute the embedding once: it both answers membership and feeds
        # cut_open, so the prover runs a single planarity test per network
        # instead of two (the full test dominates proving time at large n).
        try:
            rotation = compute_planar_embedding(graph, backend=self.embedding_backend)
        except NotPlanarError:
            raise NotInClassError("the network is not planar") from None
        tree: RootedTree | None = None
        if self.spanning_tree_builder is not None:
            root = self.root if self.root is not None else next(iter(graph.nodes()))
            tree = self.spanning_tree_builder(graph, root)
        decomposition = cut_open(graph, rotation=rotation, tree=tree, root=self.root,
                                 embedding_backend=self.embedding_backend)
        return self._certificates_from_decomposition(network, decomposition)

    def _certificates_from_decomposition(
            self, network: Network,
            decomposition: PlanarCutDecomposition) -> dict[Node, PlanarityCertificate]:
        graph = network.graph
        n_path = decomposition.path_length
        intervals = compute_covering_intervals(
            n_path, decomposition.chord_intervals(), assume_laminar=True)

        def entries(indices: tuple[int, ...]) -> IntervalEntries:
            unique = sorted(set(indices))
            return tuple((index, intervals[index][0], intervals[index][1]) for index in unique)

        edge_certificates: dict[tuple[Node, Node], EdgeCertificate] = {}
        for key, image in decomposition.tree_edge_images.items():
            certificate = TreeEdgeCertificate(
                parent_id=network.id_of(image.parent),
                child_id=network.id_of(image.child),
                descend_index=image.descend_index,
                return_index=image.return_index,
                intervals=entries((image.descend_index, image.descend_index + 1,
                                   image.return_index, image.return_index + 1)),
            )
            edge_certificates[key] = certificate
        for key, (copy_a, copy_b) in decomposition.cotree_edge_images.items():
            a, b = key
            certificate = CotreeEdgeCertificate(
                a_id=network.id_of(a),
                b_id=network.id_of(b),
                copy_a=copy_a,
                copy_b=copy_b,
                intervals=entries((copy_a, copy_b)),
            )
            edge_certificates[key] = certificate

        # distribute the edge certificates
        per_node: dict[Node, list[EdgeCertificate]] = {node: [] for node in graph.nodes()}
        if self.distribute_by_degeneracy:
            assignment = assign_edges_by_degeneracy(graph)
            for node, edges in assignment.items():
                for edge in edges:
                    per_node[node].append(edge_certificates[edge_key(*edge)])
        else:
            for (u, v), certificate in edge_certificates.items():
                per_node[u].append(certificate)
                per_node[v].append(certificate)

        st_labels = spanning_tree_labels(network, decomposition.tree)
        return {
            node: PlanarityCertificate(
                spanning_tree=st_labels[node],
                edge_certificates=tuple(per_node[node]),
            )
            for node in graph.nodes()
        }

    # ------------------------------------------------------------------
    # verifier (Algorithm 2)
    # ------------------------------------------------------------------
    def verify(self, view: LocalView) -> bool:
        structure = reconstruct_local_structure(
            view, enforce_certificate_cap=self.distribute_by_degeneracy)
        if structure is None:
            return False
        if structure.is_single_node:
            return True
        return simulate_algorithm1(structure)


def simulate_algorithm1(structure: "LocalStructure") -> bool:
    """Phase 3 of Algorithm 2: run the Algorithm 1 verifier at every copy.

    Standalone (it consumes only the reconstructed :class:`LocalStructure`)
    so the vectorized planarity kernel can mirror it conjunct for conjunct
    over the flattened copy/chord arrays — the same sharing contract as
    :func:`~repro.core.building_blocks.check_spanning_tree_label` /
    :func:`~repro.vectorized.kernels.spanning_tree_accept`.
    """
    interval_of = structure.interval_of
    n_path = structure.path_length
    for index in structure.copies:
        if index not in interval_of:
            return False
        neighbor_intervals: dict[int, Interval | None] = {}
        for path_neighbor in (index - 1, index + 1):
            if 1 <= path_neighbor <= n_path:
                if path_neighbor not in interval_of:
                    return False
                neighbor_intervals[path_neighbor] = interval_of[path_neighbor]
        for chord_neighbor in structure.chord_neighbors[index]:
            if chord_neighbor not in interval_of:
                return False
            if chord_neighbor in neighbor_intervals:
                # two distinct G_{T,f} edges cannot join the same pair of copies
                return False
            neighbor_intervals[chord_neighbor] = interval_of[chord_neighbor]
        if not algorithm1_check(index, n_path, interval_of[index], neighbor_intervals):
            return False
    return True


def consistent_interval_map(certificates, n_path: int) -> dict[int, Interval] | None:
    """Merge the interval entries of the visible edge certificates, or ``None``.

    The interval-map consistency phase of Algorithm 2: every mentioned index
    must lie in ``1 .. n_path`` and every certificate mentioning the same
    index must claim the same ``(low, high)`` interval.  Shared with the
    vectorized kernel, which runs the same two conditions as a per-node
    segmented sort over the flattened ``(index, low, high)`` triples.
    """
    interval_of: dict[int, Interval] = {}
    for certificate in certificates:
        for index, low, high in certificate.intervals:
            if not 1 <= index <= n_path:
                return None
            value = (low, high)
            if interval_of.setdefault(index, value) != value:
                return None
    return interval_of


@dataclass(frozen=True)
class LocalStructure:
    """Local picture of ``G_{T,f}`` reconstructed by Algorithm 2 at one node.

    Produced by :func:`reconstruct_local_structure` after all structural
    checks (spanning tree, DFS-mapping, edge-certificate consistency)
    succeeded.  ``copies`` are the indices ``f^{-1}(x)`` of the node,
    ``chord_neighbors`` maps each copy to the chord endpoints attached to
    it, and ``interval_of`` collects every Lemma 2 interval mentioned by the
    certificates visible at the node.
    """

    node_id: int
    total_nodes: int
    path_length: int
    is_root: bool
    is_single_node: bool
    copies: tuple[int, ...]
    chord_neighbors: dict[int, tuple[int, ...]]
    interval_of: dict[int, Interval]


def reconstruct_local_structure(view: LocalView,
                                enforce_certificate_cap: bool = True) -> LocalStructure | None:
    """Phases 1 and 2 of Algorithm 2: structural verification at one node.

    Returns the reconstructed :class:`LocalStructure` when every structural
    check passes, and ``None`` otherwise.  The path-outerplanarity phase
    (Phase 3) is layered on top by :class:`PlanarityScheme`; the dMAM
    baseline reuses this function and replaces Phase 3 by its randomized
    fingerprint checks.
    """
    own = view.certificate
    if not isinstance(own, PlanarityCertificate):
        return None
    if enforce_certificate_cap and len(own.edge_certificates) > MAX_EDGE_CERTIFICATES_PER_NODE:
        return None
    neighbor_certs: dict[int, PlanarityCertificate] = {}
    for neighbor_id in view.neighbor_ids:
        certificate = view.neighbor_certificate(neighbor_id)
        if not isinstance(certificate, PlanarityCertificate):
            return None
        neighbor_certs[neighbor_id] = certificate

    my_id = view.center_id
    st_own = own.spanning_tree
    st_neighbors = {nid: cert.spanning_tree for nid, cert in neighbor_certs.items()}

    # ---- Phase 2a: T is a spanning tree of G (and st_own.total == n) ----
    if not check_spanning_tree_label(my_id, st_own, st_neighbors):
        return None
    n_claimed = st_own.total
    n_path = 2 * n_claimed - 1

    # special case: single-node network
    if not view.neighbor_ids:
        if n_claimed != 1:
            return None
        return LocalStructure(node_id=my_id, total_nodes=1, path_length=1,
                              is_root=True, is_single_node=True,
                              copies=(1,), chord_neighbors={1: ()}, interval_of={})

    # ---- Phase 1: collect the edge certificates visible at this node ----
    # Certificates about my incident edges are keyed by the *other* endpoint
    # identifier (for a certificate whose two endpoint fields both equal my
    # own identifier the "other" endpoint is my_id itself, which can never
    # match a neighbor identifier, so such a certificate still fails the
    # coverage check below exactly as the original frozenset keying did).
    collected: dict[int, EdgeCertificate] = {}
    for source in (own, *neighbor_certs.values()):
        for certificate in source.edge_certificates:
            if not isinstance(certificate, (TreeEdgeCertificate, CotreeEdgeCertificate)):
                return None
            endpoints = certificate.endpoint_ids()
            if my_id not in endpoints:
                continue  # not about one of my incident edges
            other = my_id
            for endpoint in endpoints:
                if endpoint != my_id:
                    other = endpoint
            existing = collected.get(other)
            if existing is None:
                collected[other] = certificate
            elif existing != certificate:
                return None  # conflicting certificates for the same edge

    # every incident edge must be covered by exactly one certificate
    if len(collected) != len(view.neighbor_ids) or \
            any(neighbor_id not in collected for neighbor_id in view.neighbor_ids):
        return None

    # consistent interval map over all mentioned indices
    interval_of = consistent_interval_map(collected.values(), n_path)
    if interval_of is None:
        return None

    # ---- Phase 1b: recover my copies and the local structure of G_{T,f} ----
    parent_id = st_own.parent_id
    child_ids = [nid for nid, st in st_neighbors.items() if st.parent_id == my_id]
    tree_neighbor_ids = set(child_ids) | ({parent_id} if parent_id is not None else set())

    my_copies: set[int] = set()
    child_span: dict[int, tuple[int, int]] = {}  # child id -> (f_min, f_max)
    parent_edge: TreeEdgeCertificate | None = None
    for neighbor_id in view.neighbor_ids:
        certificate = collected[neighbor_id]
        if certificate.is_tree_edge:
            # tree-edge certificates must exist exactly for tree neighbors,
            # with the parent/child orientation matching the spanning-tree labels
            if neighbor_id not in tree_neighbor_ids:
                return None
            assert isinstance(certificate, TreeEdgeCertificate)
            if neighbor_id == parent_id:
                if certificate.parent_id != parent_id or certificate.child_id != my_id:
                    return None
                parent_edge = certificate
                my_copies.add(certificate.descend_index + 1)
                my_copies.add(certificate.return_index)
            else:
                if certificate.parent_id != my_id or certificate.child_id != neighbor_id:
                    return None
                my_copies.add(certificate.descend_index)
                my_copies.add(certificate.return_index + 1)
                child_span[neighbor_id] = (certificate.descend_index + 1,
                                           certificate.return_index)
        else:
            if neighbor_id in tree_neighbor_ids:
                return None  # a tree edge disguised as a cotree edge
    if parent_id is not None and parent_edge is None:
        return None
    if set(child_span) != set(child_ids):
        return None
    if any(not 1 <= index <= n_path for index in my_copies):
        return None

    # ---- Phase 2b: f is a DFS-mapping of T ----
    # (an adversarial certificate set can leave a node with no copies at
    # all — a root claiming total == 1 whose incident edges are all covered
    # by cotree certificates — which no genuine Euler tour produces, so the
    # chain predicate rejects it outright)
    if not euler_tour_locally_consistent(my_copies, list(child_span.values())):
        return None
    copies_sorted = sorted(my_copies)
    f_min, f_max = copies_sorted[0], copies_sorted[-1]
    if parent_id is None:
        # the root owns the first and last index of the Euler tour
        if f_min != 1 or f_max != n_path:
            return None
    else:
        assert parent_edge is not None
        if f_min != parent_edge.descend_index + 1 or f_max != parent_edge.return_index:
            return None

    # ---- Phase 1c: neighborhoods of my copies in G_{T,f} ----
    chord_neighbors: dict[int, list[int]] = {index: [] for index in my_copies}
    for neighbor_id in view.neighbor_ids:
        certificate = collected[neighbor_id]
        if certificate.is_tree_edge:
            continue
        assert isinstance(certificate, CotreeEdgeCertificate)
        a_id, b_id = certificate.a_id, certificate.b_id
        if not ((a_id == my_id and b_id == neighbor_id)
                or (a_id == neighbor_id and b_id == my_id)):
            return None
        my_copy = certificate.copy_of(my_id)
        other_copy = certificate.copy_of(neighbor_id)
        if my_copy not in my_copies:
            return None
        if not 1 <= other_copy <= n_path:
            return None
        chord_neighbors[my_copy].append(other_copy)

    return LocalStructure(
        node_id=my_id,
        total_nodes=n_claimed,
        path_length=n_path,
        is_root=parent_id is None,
        is_single_node=False,
        copies=tuple(copies_sorted),
        chord_neighbors={index: tuple(neighbors)
                         for index, neighbors in chord_neighbors.items()},
        interval_of=interval_of,
    )
