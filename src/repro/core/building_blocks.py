"""Certification building blocks: spanning trees and Hamiltonian path orders.

Section 2 of the paper recalls the standard proof-labeling-scheme ingredients
that the planarity scheme reuses: certifying a spanning tree (root
identifier, parent pointer, distance, and a subtree counter to certify the
number of nodes), and certifying that a rank assignment forms a spanning
(Hamiltonian) path.  This module implements those ingredients as reusable
label dataclasses plus the corresponding local checks, and exposes two
classic standalone schemes built from them:

* :class:`PathGraphScheme` — the warm-up example of Section 2 (the class of
  path graphs);
* :class:`TreeScheme` — the class of trees, certified by making every edge a
  tree edge of a certified spanning tree.

Both are exercised by the test-suite independently of the planarity scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.certificates import BitWriter, Encodable
from repro.distributed.network import LocalView, Network
from repro.distributed.scheme import ProofLabelingScheme
from repro.exceptions import NotInClassError
from repro.graphs.graph import Graph, Node
from repro.graphs.spanning_tree import RootedTree, bfs_spanning_tree
from repro.graphs.validation import is_path_graph

__all__ = [
    "HamiltonianPathLabel",
    "SpanningTreeLabel",
    "check_hamiltonian_path_label",
    "check_spanning_tree_label",
    "hamiltonian_path_labels",
    "spanning_tree_labels",
    "PathGraphScheme",
    "TreeScheme",
]


# ----------------------------------------------------------------------
# Hamiltonian path certification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HamiltonianPathLabel(Encodable):
    """Certificate fields proving that the ranks form a spanning path.

    ``total`` is the claimed number of nodes, ``rank`` the position of this
    node in the path (1-based), ``root_id`` the identifier of the rank-1
    node, and ``parent_id`` the identifier of the neighbor with rank one
    less (``None`` exactly at rank 1).  Every field is ``O(log n)`` bits.
    """

    total: int
    rank: int
    root_id: int
    parent_id: int | None

    def encode(self, writer: BitWriter) -> None:
        writer.write_uint(self.total)
        writer.write_uint(self.rank)
        writer.write_uint(self.root_id)
        writer.write_optional_uint(self.parent_id)


def check_hamiltonian_path_label(own_id: int, own: HamiltonianPathLabel | None,
                                 neighbor_labels: dict[int, HamiltonianPathLabel | None],
                                 ) -> bool:
    """Local verification of the Hamiltonian-path labels at one node.

    Soundness (together with the connectivity assumption of the model): if
    every node accepts, the rank-1 node is unique because its identifier must
    equal the common ``root_id``; by induction on the rank, each rank class
    has exactly one node because a rank-``r`` node accepts only when it has
    exactly one neighbor claiming it as parent (with rank ``r + 1``);
    finally every rank in ``1..total`` must be realised, so ``total`` equals
    the true number of nodes and consecutive ranks are adjacent.
    """
    if own is None:
        return False
    if not 1 <= own.rank <= own.total:
        return False
    for label in neighbor_labels.values():
        if label is None:
            return False
        if label.total != own.total or label.root_id != own.root_id:
            return False
    if own.rank == 1:
        if own_id != own.root_id or own.parent_id is not None:
            return False
    else:
        if own.parent_id is None or own.parent_id not in neighbor_labels:
            return False
        parent = neighbor_labels[own.parent_id]
        if parent is None or parent.rank != own.rank - 1:
            return False
    children = [nid for nid, label in neighbor_labels.items()
                if label is not None and label.parent_id == own_id]
    if own.rank < own.total:
        if len(children) != 1:
            return False
        child = neighbor_labels[children[0]]
        if child is None or child.rank != own.rank + 1:
            return False
    else:
        if children:
            return False
    return True


def hamiltonian_path_labels(network: Network, order: list[Node]) -> dict[Node, HamiltonianPathLabel]:
    """Honest prover: build the Hamiltonian-path labels for a witness ``order``."""
    n = len(order)
    root_id = network.id_of(order[0])
    labels: dict[Node, HamiltonianPathLabel] = {}
    for index, node in enumerate(order):
        parent_id = network.id_of(order[index - 1]) if index > 0 else None
        labels[node] = HamiltonianPathLabel(total=n, rank=index + 1,
                                            root_id=root_id, parent_id=parent_id)
    return labels


# ----------------------------------------------------------------------
# spanning tree certification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpanningTreeLabel(Encodable):
    """Certificate fields proving a spanning tree (and thus the node count).

    The subtree counter is what upgrades the classic (root, parent, distance)
    triple into a proof that ``total`` equals the actual number of nodes.
    """

    total: int
    root_id: int
    parent_id: int | None
    distance: int
    subtree_size: int

    def encode(self, writer: BitWriter) -> None:
        writer.write_uint(self.total)
        writer.write_uint(self.root_id)
        writer.write_optional_uint(self.parent_id)
        writer.write_uint(self.distance)
        writer.write_uint(self.subtree_size)


def check_spanning_tree_label(own_id: int, own: SpanningTreeLabel | None,
                              neighbor_labels: dict[int, SpanningTreeLabel | None]) -> bool:
    """Local verification of the spanning-tree labels at one node."""
    if own is None:
        return False
    for label in neighbor_labels.values():
        if label is None:
            return False
        if label.total != own.total or label.root_id != own.root_id:
            return False
    if own_id == own.root_id:
        if own.parent_id is not None or own.distance != 0:
            return False
        if own.subtree_size != own.total:
            return False
    else:
        if own.parent_id is None or own.parent_id not in neighbor_labels:
            return False
        parent = neighbor_labels[own.parent_id]
        if parent is None or parent.distance != own.distance - 1:
            return False
    children = [label for nid, label in neighbor_labels.items()
                if label is not None and label.parent_id == own_id]
    if own.subtree_size != 1 + sum(child.subtree_size for child in children):
        return False
    return True


def spanning_tree_labels(network: Network, tree: RootedTree) -> dict[Node, SpanningTreeLabel]:
    """Honest prover: build the spanning-tree labels for ``tree``."""
    sizes = tree.subtree_sizes()
    total = network.size
    root_id = network.id_of(tree.root)
    labels: dict[Node, SpanningTreeLabel] = {}
    for node in tree.nodes():
        parent = tree.parent(node)
        labels[node] = SpanningTreeLabel(
            total=total,
            root_id=root_id,
            parent_id=None if parent is None else network.id_of(parent),
            distance=tree.depth(node),
            subtree_size=sizes[node],
        )
    return labels


# ----------------------------------------------------------------------
# standalone schemes built from the blocks
# ----------------------------------------------------------------------
class PathGraphScheme(ProofLabelingScheme):
    """The warm-up scheme of Section 2: certify that the network is a path."""

    name = "path-graph-pls"

    def is_member(self, graph: Graph) -> bool:
        return is_path_graph(graph)

    def prove(self, network: Network) -> dict[Node, HamiltonianPathLabel]:
        graph = network.graph
        if not self.is_member(graph):
            raise NotInClassError("the network is not a path")
        if graph.number_of_nodes() == 1:
            node = next(iter(graph.nodes()))
            return {node: HamiltonianPathLabel(total=1, rank=1,
                                               root_id=network.id_of(node), parent_id=None)}
        endpoints = [node for node in graph.nodes() if graph.degree(node) == 1]
        order = [endpoints[0]]
        previous = None
        while len(order) < graph.number_of_nodes():
            nxt = [v for v in graph.neighbors(order[-1]) if v != previous]
            previous = order[-1]
            order.append(nxt[0])
        return hamiltonian_path_labels(network, order)

    def verify(self, view: LocalView) -> bool:
        if view.degree > 2:
            return False
        neighbor_labels = {nid: view.neighbor_certificate(nid) for nid in view.neighbor_ids}
        own = view.certificate
        if not check_hamiltonian_path_label(view.center_id, own, neighbor_labels):
            return False
        # every incident edge must be a path edge: consecutive ranks only
        # (this is what separates "is a path" from "has a spanning path",
        # e.g. it makes the verifier reject a cycle carrying path labels)
        for label in neighbor_labels.values():
            if label is None or abs(label.rank - own.rank) != 1:
                return False
        return True


class TreeScheme(ProofLabelingScheme):
    """Certify that the network is a tree (connected and acyclic).

    Every node checks the spanning-tree labels and additionally that each of
    its incident edges is a tree edge (the neighbor is its parent or claims
    it as parent); if all nodes accept, the graph equals its spanning tree.
    """

    name = "tree-pls"

    def is_member(self, graph: Graph) -> bool:
        return graph.is_connected() and graph.number_of_edges() == graph.number_of_nodes() - 1

    def prove(self, network: Network) -> dict[Node, SpanningTreeLabel]:
        if not self.is_member(network.graph):
            raise NotInClassError("the network is not a tree")
        root = next(iter(network.graph.nodes()))
        tree = bfs_spanning_tree(network.graph, root)
        return spanning_tree_labels(network, tree)

    def verify(self, view: LocalView) -> bool:
        own = view.certificate
        neighbor_labels = {nid: view.neighbor_certificate(nid) for nid in view.neighbor_ids}
        if not check_spanning_tree_label(view.center_id, own, neighbor_labels):
            return False
        for nid, label in neighbor_labels.items():
            if label is None:
                return False
            is_parent_edge = own.parent_id == nid
            is_child_edge = label.parent_id == view.center_id
            if not (is_parent_edge or is_child_edge):
                return False
        return True
