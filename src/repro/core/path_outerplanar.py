"""Path-outerplanar graphs (Definition 1 and Lemma 1 of the paper).

A graph is *path-outerplanar* when its vertices admit a total order that
forms a Hamiltonian path and in which every two edges, viewed as intervals
over the order, are nested or disjoint (they may share endpoints but may not
cross).  Lemma 1 shows this is the same as having a drawing with the
Hamiltonian path on a horizontal line and all remaining edges as
non-crossing semi-circles above it.

This module provides the combinatorial side: witness checking, crossing
detection, interval (``I(x)``) computation used by the certificates of
Lemma 2, witness search for small graphs, and a generator of random
path-outerplanar instances for the tests and benchmarks.
"""

from __future__ import annotations

import random
from itertools import permutations

from repro.exceptions import GraphError
from repro.graphs.graph import Graph, Node
from repro.graphs.validation import hamiltonian_order_is_valid

__all__ = [
    "intervals_cross",
    "find_crossing_pair",
    "is_path_outerplanar_witness",
    "is_path_outerplanar",
    "find_path_outerplanar_witness",
    "compute_covering_intervals",
    "random_path_outerplanar_graph",
]

Interval = tuple[int, int]


def intervals_cross(first: Interval, second: Interval) -> bool:
    """Return whether two edge-intervals cross (violate Definition 1).

    Intervals may share endpoints; they cross exactly when they strictly
    interleave: ``a < c < b < d`` for one of the two orderings.
    """
    a, b = min(first), max(first)
    c, d = min(second), max(second)
    if a > c or (a == c and b < d):
        a, b, c, d = c, d, a, b
    return a < c < b < d


def find_crossing_pair(chords: list[Interval]) -> tuple[Interval, Interval] | None:
    """Return a pair of crossing chords, or ``None`` when the family is laminar.

    Runs in ``O(m log m)`` with the classic parenthesis-matching sweep, so it
    can be used on the large instances produced by the benchmarks.
    """
    normalised = sorted((min(c), max(c)) for c in chords)
    # sort by left endpoint ascending, right endpoint descending
    normalised.sort(key=lambda iv: (iv[0], -iv[1]))
    stack: list[Interval] = []
    for a, b in normalised:
        if a == b:
            raise GraphError("degenerate chord with equal endpoints")
        while stack and stack[-1][1] <= a:
            stack.pop()
        if stack and stack[-1][1] < b:
            return (stack[-1], (a, b))
        stack.append((a, b))
    return None


def is_path_outerplanar_witness(graph: Graph, order: list[Node]) -> bool:
    """Check whether ``order`` is a path-outerplanarity witness for ``graph``.

    ``order`` must list every node exactly once, consecutive nodes must be
    adjacent (so the order is a Hamiltonian path), and no two edges may cross
    with respect to the order.
    """
    if not hamiltonian_order_is_valid(graph, order):
        return False
    rank = {node: index + 1 for index, node in enumerate(order)}
    chords = [(rank[u], rank[v]) for u, v in graph.edges()]
    return find_crossing_pair(chords) is None


def is_path_outerplanar(graph: Graph, max_exact_nodes: int = 9) -> bool:
    """Decide path-outerplanarity, exactly for small graphs.

    The decision problem contains Hamiltonian path, so only small graphs are
    decided exactly (by enumeration of vertex orders); larger graphs raise
    unless one of the cheap heuristics finds a witness.
    """
    witness = find_path_outerplanar_witness(graph, max_exact_nodes=max_exact_nodes,
                                            raise_on_failure=False)
    if witness is not None:
        return True
    if graph.number_of_nodes() <= max_exact_nodes:
        return False
    raise GraphError(
        "graph too large for the exact path-outerplanarity decision; "
        "supply a witness explicitly")


def find_path_outerplanar_witness(graph: Graph, max_exact_nodes: int = 9,
                                  raise_on_failure: bool = True) -> list[Node] | None:
    """Return a path-outerplanarity witness, or ``None``.

    The search first tries cheap candidate orders (sorted nodes and their
    reverse, helpful because our generators use the natural order as the
    witness), then falls back to exhaustive enumeration for graphs with at
    most ``max_exact_nodes`` nodes.
    """
    nodes = sorted(graph.nodes(), key=repr)
    candidates = [nodes, list(reversed(nodes))]
    for order in candidates:
        if is_path_outerplanar_witness(graph, order):
            return order
    if graph.number_of_nodes() <= max_exact_nodes:
        for order in permutations(nodes):
            # the reverse of a witness is a witness, so only test one orientation
            if len(order) > 1 and repr(order[0]) > repr(order[-1]):
                continue
            if is_path_outerplanar_witness(graph, list(order)):
                return list(order)
        return None
    if raise_on_failure:
        raise GraphError(
            "no cheap witness found and the graph is too large for exhaustive search")
    return None


def compute_covering_intervals(n: int, chords: list[Interval],
                               assume_laminar: bool = True) -> dict[int, Interval]:
    """Compute ``I(x)`` for every rank ``x`` in ``1..n`` (Lemma 2 certificates).

    ``I(x)`` is the shortest chord ``[a, b]`` with ``a < x < b``; when no
    chord covers ``x`` the sentinel ``(0, n + 1)`` is used, exactly as in the
    paper.  Chords are given as rank pairs; chords of length one (path edges)
    never cover anything and are ignored.

    With ``assume_laminar=True`` a linear sweep is used (valid whenever the
    chord family is non-crossing, which is always the case for the honest
    prover); otherwise a quadratic but assumption-free scan is used.
    """
    sentinel: Interval = (0, n + 1)
    covering = [(min(a, b), max(a, b)) for a, b in chords if abs(a - b) >= 2]
    intervals: dict[int, Interval] = {x: sentinel for x in range(1, n + 1)}
    if not covering:
        return intervals
    if not assume_laminar:
        for x in range(1, n + 1):
            best = sentinel
            for a, b in covering:
                if a < x < b and (b - a) < (best[1] - best[0]):
                    best = (a, b)
            intervals[x] = best
        return intervals
    # laminar sweep: the innermost active chord at x is the top of the stack
    covering.sort(key=lambda iv: (iv[0], -iv[1]))
    stack: list[Interval] = []
    pointer = 0
    for x in range(1, n + 1):
        while pointer < len(covering) and covering[pointer][0] < x:
            stack.append(covering[pointer])
            pointer += 1
        while stack and stack[-1][1] <= x:
            stack.pop()
        intervals[x] = stack[-1] if stack else sentinel
    return intervals


def random_path_outerplanar_graph(n: int, chord_count: int | None = None,
                                  seed: int | None = None) -> tuple[Graph, list[int]]:
    """Generate a random path-outerplanar graph with witness ``[0, 1, ..., n-1]``.

    The graph consists of the path ``0 - 1 - ... - (n-1)`` plus
    ``chord_count`` random chords added only when they keep the chord family
    laminar.  Returns ``(graph, witness)``.
    """
    if n < 1:
        raise GraphError("need at least one node")
    rng = random.Random(seed)
    graph = Graph(nodes=range(n))
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    if chord_count is None:
        chord_count = max(0, n // 2)
    chords: list[Interval] = []
    attempts = 0
    while len(chords) < chord_count and attempts < 50 * (chord_count + 1):
        attempts += 1
        a, b = sorted(rng.sample(range(n), 2)) if n >= 2 else (0, 0)
        if b - a < 2 or graph.has_edge(a, b):
            continue
        candidate = (a + 1, b + 1)  # ranks are 1-based
        if all(not intervals_cross(candidate, existing) for existing in chords):
            chords.append(candidate)
            graph.add_edge(a, b)
    return graph, list(range(n))
