"""Core package: the paper's certification schemes and constructions.

* :mod:`repro.core.building_blocks` — spanning-tree / Hamiltonian-path
  certification ingredients (Section 2);
* :mod:`repro.core.path_outerplanar` — Definition 1, witnesses, intervals;
* :mod:`repro.core.po_scheme` — Lemma 2 / Algorithm 1 (path-outerplanarity PLS);
* :mod:`repro.core.dfs_mapping` — Lemmas 3-4 (cutting a planar graph open
  along a spanning tree);
* :mod:`repro.core.planarity_scheme` — Theorem 1 / Algorithm 2 (planarity PLS);
* :mod:`repro.core.nonplanarity_scheme` — the folklore Kuratowski scheme.
"""

from repro.core.building_blocks import (
    HamiltonianPathLabel,
    PathGraphScheme,
    SpanningTreeLabel,
    TreeScheme,
)
from repro.core.path_outerplanar import (
    compute_covering_intervals,
    find_path_outerplanar_witness,
    is_path_outerplanar_witness,
    random_path_outerplanar_graph,
)
from repro.core.po_scheme import PathOuterplanarLabel, PathOuterplanarScheme, algorithm1_check
from repro.core.dfs_mapping import DFSMapping, PlanarCutDecomposition, cut_open
from repro.core.planarity_scheme import (
    CotreeEdgeCertificate,
    PlanarityCertificate,
    PlanarityScheme,
    TreeEdgeCertificate,
)
from repro.core.nonplanarity_scheme import NonPlanarityCertificate, NonPlanarityScheme

__all__ = [
    "HamiltonianPathLabel",
    "SpanningTreeLabel",
    "PathGraphScheme",
    "TreeScheme",
    "compute_covering_intervals",
    "find_path_outerplanar_witness",
    "is_path_outerplanar_witness",
    "random_path_outerplanar_graph",
    "PathOuterplanarLabel",
    "PathOuterplanarScheme",
    "algorithm1_check",
    "DFSMapping",
    "PlanarCutDecomposition",
    "cut_open",
    "PlanarityCertificate",
    "PlanarityScheme",
    "TreeEdgeCertificate",
    "CotreeEdgeCertificate",
    "NonPlanarityCertificate",
    "NonPlanarityScheme",
]
