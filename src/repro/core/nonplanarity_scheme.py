"""The folklore proof-labeling scheme for *non*-planarity (Section 2).

By Kuratowski's theorem a graph is non-planar iff it contains a subdivision
of ``K5`` or ``K3,3``.  The folklore scheme (whose existence the paper
recalls in Section 2) certifies non-planarity by exhibiting such a
subdivision:

* every certificate carries the identifiers of the 5 (resp. 6) *branch
  vertices* of the subdivision and a spanning tree rooted at branch vertex
  number 0 (anchoring its existence);
* nodes on the subdivision additionally carry their role: either "branch
  vertex number ``k``" or "``p``-th internal vertex of the subdivided edge
  between branch vertices ``k`` and ``l``", together with the identifiers of
  their predecessor and successor along that subdivided edge.

All fields are identifiers, positions, or constants, so certificates take
``O(log n)`` bits.  The scheme is used as a companion baseline in the
comparison experiment (E5/E9): together with Theorem 1 it shows that *both*
planarity and non-planarity admit compact distributed certification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.building_blocks import (
    SpanningTreeLabel,
    check_spanning_tree_label,
    spanning_tree_labels,
)
from repro.distributed.certificates import BitWriter, Encodable
from repro.distributed.network import LocalView, Network
from repro.distributed.scheme import ProofLabelingScheme
from repro.exceptions import NotInClassError
from repro.graphs.graph import Graph, Node
from repro.graphs.kuratowski import find_kuratowski_subdivision
from repro.graphs.planarity import is_planar
from repro.graphs.spanning_tree import bfs_spanning_tree

__all__ = [
    "KIND_K5",
    "KIND_K33",
    "MAX_BRANCH_VERTICES",
    "SubdivisionRole",
    "NonPlanarityCertificate",
    "NonPlanarityScheme",
]

KIND_K5 = 0
KIND_K33 = 1

#: every valid kind has at most this many branch vertices (5 for ``K5``, 6
#: for ``K3,3``); the vectorized kernel flattens ``branch_ids`` into this
#: many fixed-width columns, so longer tuples take the reference fallback
MAX_BRANCH_VERTICES = 6

#: required partner branch indices for each branch vertex, per kind
_PARTNERS = {
    KIND_K5: {k: tuple(l for l in range(5) if l != k) for k in range(5)},
    KIND_K33: {**{k: (3, 4, 5) for k in range(3)}, **{k: (0, 1, 2) for k in range(3, 6)}},
}


@dataclass(frozen=True)
class SubdivisionRole(Encodable):
    """Role of a node inside the certified Kuratowski subdivision.

    Either a branch vertex (``branch_index`` set, path fields ``None``) or an
    internal vertex of the subdivided edge between branch vertices
    ``path_low < path_high`` at distance ``position`` from ``path_low``
    (``prev_id`` / ``next_id`` are the neighbors toward ``path_low`` /
    ``path_high``).
    """

    branch_index: int | None
    path_low: int | None
    path_high: int | None
    position: int | None
    prev_id: int | None
    next_id: int | None

    @property
    def is_branch(self) -> bool:
        return self.branch_index is not None

    def encode(self, writer: BitWriter) -> None:
        writer.write_optional_uint(self.branch_index)
        writer.write_optional_uint(self.path_low)
        writer.write_optional_uint(self.path_high)
        writer.write_optional_uint(self.position)
        writer.write_optional_uint(self.prev_id)
        writer.write_optional_uint(self.next_id)

    @classmethod
    def branch(cls, index: int) -> "SubdivisionRole":
        """Role of the ``index``-th branch vertex."""
        return cls(branch_index=index, path_low=None, path_high=None,
                   position=None, prev_id=None, next_id=None)

    @classmethod
    def internal(cls, path_low: int, path_high: int, position: int,
                 prev_id: int, next_id: int) -> "SubdivisionRole":
        """Role of the ``position``-th internal vertex of a subdivided edge."""
        return cls(branch_index=None, path_low=path_low, path_high=path_high,
                   position=position, prev_id=prev_id, next_id=next_id)


@dataclass(frozen=True)
class NonPlanarityCertificate(Encodable):
    """Per-node certificate of the non-planarity scheme."""

    kind: int
    branch_ids: tuple[int, ...]
    spanning_tree: SpanningTreeLabel
    role: SubdivisionRole | None

    def encode(self, writer: BitWriter) -> None:
        writer.write_uint(self.kind)
        writer.write_uint(len(self.branch_ids))
        for identifier in self.branch_ids:
            writer.write_uint(identifier)
        self.spanning_tree.encode(writer)
        if self.role is None:
            writer.write_bool(False)
        else:
            writer.write_bool(True)
            self.role.encode(writer)


class NonPlanarityScheme(ProofLabelingScheme):
    """Folklore 1-round PLS for the class of non-planar graphs, ``O(log n)`` bits."""

    name = "non-planarity-pls"

    def __init__(self, backend: str = "networkx") -> None:
        self.backend = backend

    # ------------------------------------------------------------------
    def is_member(self, graph: Graph) -> bool:
        return not is_planar(graph, backend=self.backend)

    def prove(self, network: Network) -> dict[Node, NonPlanarityCertificate]:
        graph = network.graph
        if not self.is_member(graph):
            raise NotInClassError("the network is planar; non-planarity cannot be certified")
        subdivision = find_kuratowski_subdivision(graph, backend=self.backend)
        kind = KIND_K5 if subdivision.kind == "K5" else KIND_K33
        branch_vertices = list(subdivision.branch_vertices)
        if kind == KIND_K33:
            branch_vertices = _bipartition_order(branch_vertices, subdivision.paths())
        branch_ids = tuple(network.id_of(v) for v in branch_vertices)
        branch_index_of = {v: k for k, v in enumerate(branch_vertices)}

        roles: dict[Node, SubdivisionRole] = {
            v: SubdivisionRole.branch(k) for v, k in branch_index_of.items()
        }
        for path in subdivision.paths():
            start, end = path[0], path[-1]
            low_index = branch_index_of[start]
            high_index = branch_index_of[end]
            if low_index > high_index:
                path = list(reversed(path))
                low_index, high_index = high_index, low_index
            for position, node in enumerate(path[1:-1], start=1):
                roles[node] = SubdivisionRole.internal(
                    path_low=low_index, path_high=high_index, position=position,
                    prev_id=network.id_of(path[position - 1]),
                    next_id=network.id_of(path[position + 1]),
                )

        tree = bfs_spanning_tree(graph, branch_vertices[0])
        st_labels = spanning_tree_labels(network, tree)
        return {
            node: NonPlanarityCertificate(
                kind=kind,
                branch_ids=branch_ids,
                spanning_tree=st_labels[node],
                role=roles.get(node),
            )
            for node in graph.nodes()
        }

    # ------------------------------------------------------------------
    def verify(self, view: LocalView) -> bool:
        own = view.certificate
        if not isinstance(own, NonPlanarityCertificate):
            return False
        neighbors: dict[int, NonPlanarityCertificate] = {}
        for neighbor_id in view.neighbor_ids:
            certificate = view.neighbor_certificate(neighbor_id)
            if not isinstance(certificate, NonPlanarityCertificate):
                return False
            neighbors[neighbor_id] = certificate

        # global consistency of the claimed subdivision
        expected_branch_count = 5 if own.kind == KIND_K5 else 6
        if own.kind not in (KIND_K5, KIND_K33):
            return False
        if len(own.branch_ids) != expected_branch_count:
            return False
        if len(set(own.branch_ids)) != expected_branch_count:
            return False
        for certificate in neighbors.values():
            if certificate.kind != own.kind or certificate.branch_ids != own.branch_ids:
                return False

        # the spanning tree anchors the existence of branch vertex 0
        st_neighbors = {nid: cert.spanning_tree for nid, cert in neighbors.items()}
        if not check_spanning_tree_label(view.center_id, own.spanning_tree, st_neighbors):
            return False
        if own.spanning_tree.root_id != own.branch_ids[0]:
            return False
        if view.center_id == own.spanning_tree.root_id:
            if own.role is None or own.role.branch_index != 0:
                return False

        role = own.role
        if role is None:
            return True
        if role.is_branch:
            return self._verify_branch(view, own, neighbors)
        return self._verify_internal(view, own, neighbors)

    # ------------------------------------------------------------------
    def _verify_branch(self, view: LocalView, own: NonPlanarityCertificate,
                       neighbors: dict[int, NonPlanarityCertificate]) -> bool:
        role = own.role
        assert role is not None and role.branch_index is not None
        k = role.branch_index
        if not 0 <= k < len(own.branch_ids):
            return False
        if view.center_id != own.branch_ids[k]:
            return False
        total = own.spanning_tree.total
        for partner in _PARTNERS[own.kind][k]:
            low, high = min(k, partner), max(k, partner)
            found = False
            for neighbor_id, certificate in neighbors.items():
                other_role = certificate.role
                if other_role is None:
                    continue
                if other_role.is_branch:
                    if (other_role.branch_index == partner
                            and neighbor_id == own.branch_ids[partner]):
                        found = True
                        break
                    continue
                if (other_role.path_low, other_role.path_high) != (low, high):
                    continue
                if other_role.position is None or not 1 <= other_role.position <= total:
                    continue
                if k == low and other_role.position == 1 \
                        and other_role.prev_id == view.center_id:
                    found = True
                    break
                if k == high and other_role.next_id == view.center_id:
                    found = True
                    break
            if not found:
                return False
        return True

    def _verify_internal(self, view: LocalView, own: NonPlanarityCertificate,
                         neighbors: dict[int, NonPlanarityCertificate]) -> bool:
        role = own.role
        assert role is not None
        low, high, position = role.path_low, role.path_high, role.position
        if low is None or high is None or position is None:
            return False
        count = len(own.branch_ids)
        if not (0 <= low < high < count):
            return False
        if (low, high) not in _valid_pairs(own.kind):
            return False
        total = own.spanning_tree.total
        if not 1 <= position <= total:
            return False
        if role.prev_id is None or role.next_id is None:
            return False
        if role.prev_id not in neighbors or role.next_id not in neighbors:
            return False
        # predecessor: previous internal vertex, or the low branch vertex at position 1
        prev_cert = neighbors[role.prev_id].role
        if position == 1:
            if prev_cert is None or not prev_cert.is_branch or prev_cert.branch_index != low:
                return False
            if role.prev_id != own.branch_ids[low]:
                return False
        else:
            if prev_cert is None or prev_cert.is_branch:
                return False
            if (prev_cert.path_low, prev_cert.path_high, prev_cert.position) != \
                    (low, high, position - 1):
                return False
        # successor: next internal vertex, or the high branch vertex
        next_cert = neighbors[role.next_id].role
        if next_cert is None:
            return False
        if next_cert.is_branch:
            if next_cert.branch_index != high or role.next_id != own.branch_ids[high]:
                return False
        else:
            if (next_cert.path_low, next_cert.path_high, next_cert.position) != \
                    (low, high, position + 1):
                return False
        return True


def _bipartition_order(branch_vertices: list, paths: list[list]) -> list:
    """Reorder the six branch vertices of a ``K3,3`` subdivision by bipartition side.

    The scheme's partner table assumes that branch indices ``0, 1, 2`` form
    one side and ``3, 4, 5`` the other, so the prover 2-colours the "branch
    adjacency" induced by the subdivision paths and lists one colour class
    first.
    """
    adjacency: dict = {v: set() for v in branch_vertices}
    for path in paths:
        adjacency[path[0]].add(path[-1])
        adjacency[path[-1]].add(path[0])
    start = branch_vertices[0]
    side_a = {start}
    side_b = set(adjacency[start])
    for vertex in branch_vertices:
        if vertex in side_a or vertex in side_b:
            continue
        if adjacency[vertex] & side_a:
            side_b.add(vertex)
        else:
            side_a.add(vertex)
    ordered = sorted(side_a, key=repr) + sorted(side_b, key=repr)
    if len(side_a) != 3 or len(side_b) != 3:
        raise NotInClassError("extracted subdivision does not have a K3,3 bipartition")
    return ordered


def _valid_pairs(kind: int) -> set[tuple[int, int]]:
    pairs: set[tuple[int, int]] = set()
    for k, partners in _PARTNERS[kind].items():
        for partner in partners:
            pairs.add((min(k, partner), max(k, partner)))
    return pairs
