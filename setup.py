"""Setuptools entry point (kept as a plain ``setup.py`` so that
``pip install -e .`` works in offline environments that lack the ``wheel``
package needed by the PEP 517 editable-install path)."""
from setuptools import find_packages, setup

setup(
    name="repro-podc-planarity",
    version="1.0.0",  # keep in sync with repro.__version__
    description=("Reproduction of 'Compact Distributed Certification of "
                 "Planar Graphs' (PODC 2020)"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.11",
    install_requires=[
        # planarity/embedding backend of the honest prover
        "networkx>=3.0",
        # CSR arrays + the repro.vectorized bulk-verification kernels
        # (the library degrades gracefully without it: the vectorized
        # backend falls back to the reference verifier)
        "numpy>=1.24",
    ],
    extras_require={
        # Delaunay instance generator and the benchmark harness
        "benchmarks": ["scipy", "pytest-benchmark"],
        "tests": ["pytest", "hypothesis"],
    },
)
