"""Setuptools shim so that ``pip install -e .`` works without network access.

The actual project metadata lives in ``pyproject.toml``; this file only
exists because the offline environment lacks the ``wheel`` package needed by
the PEP 517 editable-install path.
"""
from setuptools import setup

setup()
