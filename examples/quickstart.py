"""Quickstart: certify that a network is planar with O(log n)-bit certificates.

Run with::

    python examples/quickstart.py

The example builds a small planar network, runs the honest prover of the
Theorem 1 proof-labeling scheme, verifies locally at every node, and reports
the exact certificate sizes.  It then shows the soundness side: on a
non-planar network, replaying certificates of a planar sub-network leaves at
least one node rejecting.
"""

from __future__ import annotations

from repro.analysis.tables import print_table
from repro.core.planarity_scheme import PlanarityScheme
from repro.distributed.network import Network
from repro.distributed.verifier import run_verification
from repro.graphs.generators import delaunay_planar_graph, planar_plus_random_edges
from repro.graphs.planarity import is_planar


def certify_planar_network() -> None:
    """Completeness: an honest prover convinces every node of a planar network."""
    graph = delaunay_planar_graph(40, seed=1)
    network = Network(graph, seed=1)
    scheme = PlanarityScheme()

    certificates = scheme.prove(network)
    result = run_verification(scheme, network, certificates)

    print("== Certifying a planar network (Delaunay triangulation, n = 40) ==")
    print(f"all nodes accept          : {result.accepted}")
    print(f"largest certificate       : {result.max_certificate_bits} bits")
    print(f"average certificate       : {result.mean_certificate_bits:.1f} bits")
    print(f"per-edge message load     : {result.message_bits_per_edge} bits (1 round)")
    print()


def reject_nonplanar_network() -> None:
    """Soundness: no certificate assignment convinces every node of a non-planar network."""
    graph = planar_plus_random_edges(20, extra_edges=1, seed=2)
    assert not is_planar(graph)
    network = Network(graph, seed=2)
    scheme = PlanarityScheme()

    # the strongest cheap attack: certify a planar sub-network honestly and
    # replay those certificates on the real (non-planar) network
    twin = graph.copy()
    for u, v in list(twin.edges()):
        if is_planar(twin):
            break
        twin.remove_edge(u, v)
        if not twin.is_connected():
            twin.add_edge(u, v)
    donor_network = Network(twin, ids={node: network.id_of(node) for node in twin.nodes()})
    transplanted = scheme.prove(donor_network)
    result = run_verification(scheme, network, transplanted)

    print("== Attacking a non-planar network (planar graph + 1 crossing link) ==")
    print(f"all nodes accept          : {result.accepted}")
    print(f"nodes raising the alarm   : {len(result.rejecting_nodes)} of {network.size}")
    print_table([result.summary()], title="verification summary")
    print()


if __name__ == "__main__":
    certify_planar_network()
    reject_nonplanar_network()
