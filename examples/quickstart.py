"""Quickstart: certify that a network is planar with O(log n)-bit certificates.

Run with::

    PYTHONPATH=src python examples/quickstart.py
    PYTHONPATH=src python examples/quickstart.py --backend vectorized

The example resolves the Theorem 1 proof-labeling scheme through the
:class:`~repro.distributed.registry.SchemeRegistry`, runs the honest prover
and the batched :class:`~repro.distributed.engine.SimulationEngine` verifier
over a small planar network, and reports the exact certificate sizes.  It
then shows the soundness side: on a non-planar network, replaying
certificates of a planar sub-network leaves at least one node rejecting.

``--backend vectorized`` routes every verification in this script through
the :mod:`repro.vectorized` array kernels: the building-block section runs
on its full kernel, the planarity sections on the prefilter kernel (the
vectorized spanning-tree and path-consistency phases reject in array form,
surviving nodes are re-decided by the reference verifier), and schemes
without a kernel fall back wholesale — same decisions either way.  See
``docs/ARCHITECTURE.md`` for the backend-support matrix.
"""

from __future__ import annotations

import argparse

from repro.analysis.tables import print_table
from repro.distributed.engine import BACKENDS, SimulationEngine
from repro.distributed.registry import default_registry
from repro.graphs.generators import (
    delaunay_planar_graph,
    planar_plus_random_edges,
    random_tree,
)
from repro.graphs.planarity import is_planar


def certify_planar_network(engine: SimulationEngine) -> None:
    """Completeness: an honest prover convinces every node of a planar network."""
    scheme = default_registry().create("planarity-pls")
    graph = delaunay_planar_graph(40, seed=1)
    result = engine.certify_and_verify(scheme, graph, seed=1)

    print("== Certifying a planar network (Delaunay triangulation, n = 40) ==")
    print(f"all nodes accept          : {result.accepted}")
    print(f"largest certificate       : {result.max_certificate_bits} bits")
    print(f"average certificate       : {result.mean_certificate_bits:.1f} bits")
    print(f"per-edge message load     : {result.message_bits_per_edge} bits (1 round)")
    print()


def certify_building_block(engine: SimulationEngine) -> None:
    """The spanning-tree building block, served by its vectorized kernel."""
    scheme = default_registry().create("tree-pls")
    graph = random_tree(60, seed=3)
    result = engine.certify_and_verify(scheme, graph, seed=3)

    kernel = default_registry().kernel_for(scheme)
    print("== Certifying a tree network (building-block scheme, n = 60) ==")
    print(f"verification backend      : {engine.backend}"
          + (" (array kernel)" if kernel and engine.backend == "vectorized" else ""))
    print(f"all nodes accept          : {result.accepted}")
    print(f"largest certificate       : {result.max_certificate_bits} bits")
    print()


def reject_nonplanar_network(engine: SimulationEngine) -> None:
    """Soundness: no certificate assignment convinces every node of a non-planar network."""
    scheme = default_registry().create("planarity-pls")
    graph = planar_plus_random_edges(20, extra_edges=1, seed=2)
    assert not is_planar(graph)
    network = engine.network_for(graph, seed=2)

    # the strongest cheap attack: certify a planar sub-network honestly and
    # replay those certificates on the real (non-planar) network
    twin = graph.copy()
    for u, v in list(twin.edges()):
        if is_planar(twin):
            break
        twin.remove_edge(u, v)
        if not twin.is_connected():
            twin.add_edge(u, v)
    donor_network = engine.network_for(
        twin, ids={node: network.id_of(node) for node in twin.nodes()})
    transplanted = scheme.prove(donor_network)
    result = engine.verify(scheme, network, transplanted)

    print("== Attacking a non-planar network (planar graph + 1 crossing link) ==")
    print(f"all nodes accept          : {result.accepted}")
    print(f"nodes raising the alarm   : {len(result.rejecting_nodes)} of {network.size}")
    print_table([result.summary()], title="verification summary")
    print()


def list_registered_schemes() -> None:
    """Every scheme in the library is discoverable by name."""
    print_table(default_registry().description_rows(),
                title="registered certification schemes")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=BACKENDS, default="reference",
                        help="verification backend used by the engine "
                             "(schemes without a vectorized kernel fall back "
                             "to the reference verifier)")
    args = parser.parse_args()
    engine = SimulationEngine(seed=1, backend=args.backend)

    list_registered_schemes()
    certify_planar_network(engine)
    certify_building_block(engine)
    reject_nonplanar_network(engine)


if __name__ == "__main__":
    main()
