"""Quickstart: certify that a network is planar with O(log n)-bit certificates.

Run with::

    PYTHONPATH=src python examples/quickstart.py

The example resolves the Theorem 1 proof-labeling scheme through the
:class:`~repro.distributed.registry.SchemeRegistry`, runs the honest prover
and the batched :class:`~repro.distributed.engine.SimulationEngine` verifier
over a small planar network, and reports the exact certificate sizes.  It
then shows the soundness side: on a non-planar network, replaying
certificates of a planar sub-network leaves at least one node rejecting.
"""

from __future__ import annotations

from repro.analysis.tables import print_table
from repro.distributed.engine import SimulationEngine
from repro.distributed.registry import default_registry
from repro.graphs.generators import delaunay_planar_graph, planar_plus_random_edges
from repro.graphs.planarity import is_planar

ENGINE = SimulationEngine(seed=1)
SCHEME = default_registry().create("planarity-pls")


def certify_planar_network() -> None:
    """Completeness: an honest prover convinces every node of a planar network."""
    graph = delaunay_planar_graph(40, seed=1)
    result = ENGINE.certify_and_verify(SCHEME, graph, seed=1)

    print("== Certifying a planar network (Delaunay triangulation, n = 40) ==")
    print(f"all nodes accept          : {result.accepted}")
    print(f"largest certificate       : {result.max_certificate_bits} bits")
    print(f"average certificate       : {result.mean_certificate_bits:.1f} bits")
    print(f"per-edge message load     : {result.message_bits_per_edge} bits (1 round)")
    print()


def reject_nonplanar_network() -> None:
    """Soundness: no certificate assignment convinces every node of a non-planar network."""
    graph = planar_plus_random_edges(20, extra_edges=1, seed=2)
    assert not is_planar(graph)
    network = ENGINE.network_for(graph, seed=2)

    # the strongest cheap attack: certify a planar sub-network honestly and
    # replay those certificates on the real (non-planar) network
    twin = graph.copy()
    for u, v in list(twin.edges()):
        if is_planar(twin):
            break
        twin.remove_edge(u, v)
        if not twin.is_connected():
            twin.add_edge(u, v)
    donor_network = ENGINE.network_for(
        twin, ids={node: network.id_of(node) for node in twin.nodes()})
    transplanted = SCHEME.prove(donor_network)
    result = ENGINE.verify(SCHEME, network, transplanted)

    print("== Attacking a non-planar network (planar graph + 1 crossing link) ==")
    print(f"all nodes accept          : {result.accepted}")
    print(f"nodes raising the alarm   : {len(result.rejecting_nodes)} of {network.size}")
    print_table([result.summary()], title="verification summary")
    print()


def list_registered_schemes() -> None:
    """Every scheme in the library is discoverable by name."""
    print_table(default_registry().description_rows(),
                title="registered certification schemes")
    print()


if __name__ == "__main__":
    list_registered_schemes()
    certify_planar_network()
    reject_nonplanar_network()
