"""Scenario: continuously audit a churning overlay before planar-only algorithms.

The paper's motivation (Section 1): many fast distributed algorithms —
constant-round dominating-set approximation, O(D)-round MST/min-cut — are
correct only on planar networks, so running them on a non-planar network
risks wrong outputs or non-termination.  The fix is to *certify* planarity
once — O(log n)-bit certificates, a single round of neighbor checks per
epoch — and any miswired link makes some node raise an alarm.

Real overlays do not sit still between epochs: links flap as routers
reboot, radio conditions change, and maintenance rewires street segments.
This example streams that churn through the incremental audit pipeline
(:class:`~repro.dynamic.incremental.DynamicAuditor`): each edge event is
absorbed by a local certificate repair plus a radius-1 re-verification,
costing milliseconds instead of the full re-prove + re-verify of the
whole mesh — and when a maintenance error patches in a long link that
crosses several streets, the audit alarms *in the same epoch the link
lands*, at the routers adjacent to the fault.
"""

from __future__ import annotations

import random
import time

from repro.analysis.tables import print_table
from repro.core.planarity_scheme import CotreeEdgeCertificate, PlanarityScheme
from repro.distributed.network import Network
from repro.dynamic import DynamicAuditor
from repro.graphs.generators import delaunay_planar_graph


def build_mesh(n: int = 80, seed: int = 7):
    """A planar wireless mesh: Delaunay graph of random street-corner positions."""
    return delaunay_planar_graph(n, seed=seed)


def flappable_links(auditor: DynamicAuditor) -> list[tuple[int, int]]:
    """Street links whose loss keeps the certified spanning trunk intact."""
    chords = set()
    for certificate in auditor.certificates.values():
        for edge_cert in certificate.edge_certificates:
            if isinstance(edge_cert, CotreeEdgeCertificate):
                chords.add(tuple(sorted((edge_cert.a_id, edge_cert.b_id))))
    return sorted(chords)


def main() -> None:
    mesh = build_mesh()
    network = Network(mesh, seed=7)
    auditor = DynamicAuditor(network, PlanarityScheme())

    start = time.perf_counter()
    auditor.baseline()
    baseline_seconds = time.perf_counter() - start
    rows = [{
        "epoch": "deploy: certify once",
        "event": "-",
        "alarms": 0,
        "repaired": 0,
        "re-verified": network.size,
        "ms": round(1e3 * baseline_seconds, 1),
    }]

    # months of routine churn: links flap, the repair absorbs each event
    rng = random.Random(3)
    links = flappable_links(auditor)
    node_of = network.node_of
    churn_seconds = 0.0
    churn_events = repaired = reverified = 0
    for _ in range(60):
        a, b = rng.choice(links)
        start = time.perf_counter()
        down = auditor.apply_event("remove_edge", node_of(a), node_of(b))
        up = auditor.apply_event("add_edge", node_of(a), node_of(b))
        churn_seconds += time.perf_counter() - start
        churn_events += 2
        repaired += down.changed + up.changed
        reverified += down.redecided + up.redecided
        assert up.accept_all, "routine churn must never raise an alarm"
    rows.append({
        "epoch": "routine churn (120 link flaps)",
        "event": "link down/up",
        "alarms": 0,
        "repaired": repaired,
        "re-verified": reverified,
        "ms": round(1e3 * churn_seconds / churn_events, 1),
    })

    # a maintenance error patches in a long link crossing several streets
    ids = sorted(network.ids())
    while True:
        a, b = rng.sample(ids, 2)
        if not mesh.has_edge(node_of(a), node_of(b)):
            break
    start = time.perf_counter()
    fault = auditor.apply_event("add_edge", node_of(a), node_of(b))
    fault_seconds = time.perf_counter() - start
    rows.append({
        "epoch": "maintenance error",
        "event": f"long link {a}-{b} lands",
        "alarms": len(fault.alarms),
        "repaired": fault.changed,
        "re-verified": fault.redecided,
        "ms": round(1e3 * fault_seconds, 1),
    })
    assert fault.alarms, "the miswired link must alarm the epoch it lands"
    assert not fault.member

    # operations rolls the link back; the audit recovers without re-proving
    start = time.perf_counter()
    fixed = auditor.apply_event("remove_edge", node_of(a), node_of(b))
    fix_seconds = time.perf_counter() - start
    rows.append({
        "epoch": "rollback",
        "event": f"long link {a}-{b} removed",
        "alarms": len(fixed.alarms),
        "repaired": fixed.changed,
        "re-verified": fixed.redecided,
        "ms": round(1e3 * fix_seconds, 1),
    })
    assert fixed.accept_all

    print_table(rows, title="Dynamic overlay topology audit "
                            "(incremental planarity certification)")
    print()
    print("Interpretation: the mesh is certified once at deploy time; after")
    print("that every link flap costs a local certificate repair plus a")
    print("radius-1 re-verification of a handful of routers — milliseconds,")
    print(f"not the {1e3 * baseline_seconds:.0f} ms whole-mesh recompute.")
    print(f"The miswired long link {a}-{b} is flagged by "
          f"{len(fault.alarms)} router(s) adjacent to the fault in the very")
    print("epoch it lands, and removing it restores a clean audit without")
    print("ever re-certifying from scratch.")


if __name__ == "__main__":
    main()
