"""Scenario: audit an overlay/sensor-network topology before running planar-only algorithms.

The paper's motivation (Section 1): many fast distributed algorithms —
constant-round dominating-set approximation, O(D)-round MST/min-cut — are
correct only on planar networks, so running them on a non-planar network
risks wrong outputs or non-termination.  The fix is to *certify* planarity
once: the operator (or any node during a pre-processing phase) computes
O(log n)-bit certificates; afterwards a single round of neighbor checks per
epoch re-validates the topology, and any miswired link makes some node raise
an alarm.

This example simulates that workflow on a street-level wireless mesh
(a Delaunay-like planar deployment) and on the same mesh after a "long link"
is patched in by mistake, crossing several streets.
"""

from __future__ import annotations

import random

from repro.analysis.tables import print_table
from repro.core.planarity_scheme import PlanarityScheme
from repro.distributed.network import Network
from repro.distributed.verifier import run_verification
from repro.graphs.generators import delaunay_planar_graph
from repro.graphs.planarity import is_planar


def build_mesh(n: int = 80, seed: int = 7):
    """A planar wireless mesh: Delaunay graph of random street-corner positions."""
    return delaunay_planar_graph(n, seed=seed)


def audit(graph, label: str, seed: int = 7) -> dict:
    """Certify the topology if possible; otherwise report which routers complain."""
    network = Network(graph, seed=seed)
    scheme = PlanarityScheme()
    row = {"topology": label, "n": network.size, "m": graph.number_of_edges()}
    if is_planar(graph):
        certificates = scheme.prove(network)
        result = run_verification(scheme, network, certificates)
        row.update({
            "planar": True,
            "certified": result.accepted,
            "max_certificate_bits": result.max_certificate_bits,
            "alarms": len(result.rejecting_nodes),
        })
    else:
        # the operator cannot produce valid certificates; the best it can do is
        # replay the certificates of the last known-good (planar) configuration
        twin = graph.copy()
        rng = random.Random(seed)
        edges = list(twin.edges())
        rng.shuffle(edges)
        for u, v in edges:
            if is_planar(twin):
                break
            twin.remove_edge(u, v)
            if not twin.is_connected():
                twin.add_edge(u, v)
        donor = Network(twin, ids={node: network.id_of(node) for node in twin.nodes()})
        stale_certificates = scheme.prove(donor)
        result = run_verification(scheme, network, stale_certificates)
        row.update({
            "planar": False,
            "certified": result.accepted,
            "max_certificate_bits": result.max_certificate_bits,
            "alarms": len(result.rejecting_nodes),
        })
    return row


def main() -> None:
    mesh = build_mesh()
    rows = [audit(mesh, "street mesh (as deployed)")]

    # a maintenance error patches in a long link that crosses the mesh
    miswired = mesh.copy()
    nodes = sorted(miswired.nodes())
    added = 0
    rng = random.Random(3)
    while added < 3:
        u, v = rng.sample(nodes, 2)
        if not miswired.has_edge(u, v):
            miswired.add_edge(u, v)
            added += 1
    rows.append(audit(miswired, "street mesh + 3 miswired long links"))

    print_table(rows, title="Overlay topology audit (planarity certification)")
    print()
    print("Interpretation: the deployed mesh is certified with a few hundred bits")
    print("per router; after the miswiring, certification is impossible and the")
    print("stale certificates trigger alarms at the routers adjacent to the fault.")


if __name__ == "__main__":
    main()
