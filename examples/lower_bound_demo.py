"""Walk through the Theorem 2 lower-bound constructions (Lemmas 5 and 6).

The demo builds the explicit instances of both lower-bound proofs, checks
their structural claims (minor-freeness of the legal instances, explicit
minor models in the illegal ones), performs the cut-and-paste splice, and
prints the pigeonhole counting table showing why o(log n)-bit certificates
are impossible.
"""

from __future__ import annotations

from repro.analysis.tables import print_table
from repro.graphs.minors import (
    is_k4_minor_free,
    verify_bipartite_minor_model,
    verify_clique_minor_model,
)
from repro.graphs.planarity import is_planar
from repro.graphs.validation import is_outerplanar
from repro.lowerbound.bipartite_instances import (
    bipartite_minor_model_in_glued,
    build_glued_instance,
    legal_instances_used_by_glued,
    make_identifier_partition,
)
from repro.lowerbound.blocks import (
    build_path_of_blocks,
    clique_minor_model_in_cycle,
    splice_cycle_from_paths,
)
from repro.lowerbound.counting import lower_bound_curve, minimum_certificate_bits
from repro.lowerbound.indistinguishability import illegal_views_covered_by_legal


def lemma5_demo() -> None:
    """Paths vs cycles of blocks for Forb(K5), plus the splice."""
    k, p = 5, 6
    other_order = [2, 1, 4, 3, 6, 5]
    identity_path = build_path_of_blocks(k, p)
    shuffled_path = build_path_of_blocks(k, p, permutation=other_order)
    cycle = splice_cycle_from_paths(k, p, other_permutation=other_order)
    model = clique_minor_model_in_cycle(cycle)
    labeling = {node: ("block-certificate", node % (k - 1))
                for node in identity_path.graph.nodes()}
    covered, _ = illegal_views_covered_by_legal(
        cycle.graph, [identity_path.graph, shuffled_path.graph], labeling)

    rows = [{
        "k": k,
        "ordinary blocks p": p,
        "path of blocks is planar (hence K5-minor-free)": is_planar(identity_path.graph),
        "k=4 variant is K4-minor-free": is_k4_minor_free(build_path_of_blocks(4, p).graph),
        "spliced cycle has a K5 minor": verify_clique_minor_model(cycle.graph, model),
        "cycle views covered by the two paths": covered,
    }]
    print_table(rows, title="Lemma 5: paths of blocks vs the spliced cycle")
    print()
    print_table([{
        "p": point.p, "n": point.n,
        "certificate bits needed (lower bound)": point.min_bits_lower_bound,
        "log2(#paths)": point.log2_paths,
    } for point in lower_bound_curve(5, [4, 16, 64, 256, 1024])],
        title="Lemma 5 counting: below this many bits, two paths collide and the splice fools")
    print()


def lemma6_demo() -> None:
    """The glued bipartite instance for Forb(K_{3,3})."""
    partition = make_identifier_partition(n=36, q=3)
    legal = legal_instances_used_by_glued(partition)
    glued = build_glued_instance(partition)
    side_a, side_b = bipartite_minor_model_in_glued(partition)
    labeling = {node: ("certificate", node) for node in glued.nodes()}
    covered, _ = illegal_views_covered_by_legal(glued, legal, labeling)
    rows = [{
        "q": partition.q,
        "legal instances": len(legal),
        "legal instances all outerplanar": all(is_outerplanar(g) for g in legal),
        "glued instance has a K_{3,3} minor": verify_bipartite_minor_model(glued, side_a, side_b),
        "glued views covered by legal views": covered,
    }]
    print_table(rows, title="Lemma 6: legal two-path instances vs the glued instance")
    print()
    print(f"Minimum certificate bits forced by Lemma 5 at n = 4096: "
          f"{minimum_certificate_bits(5, 4096 // 4 - 2)} "
          "(grows as log n, matching the Theorem 1 upper bound up to constants)")


if __name__ == "__main__":
    lemma5_demo()
    lemma6_demo()
