"""Compare every certification mechanism on the same network (experiment E5).

Reproduces the comparison the paper makes in its introduction: the Theorem 1
proof-labeling scheme needs a single prover interaction, no randomness, and
O(log n)-bit certificates; the previous dMAM protocol of Naor–Parter–Yogev
needs three interactions and randomness for the same certificate size; the
folklore universal scheme needs Theta(n log n) bits; and non-planarity has
its own compact folklore scheme.
"""

from __future__ import annotations

from repro.analysis.experiments import certificate_size_scaling, certificate_size_fit
from repro.analysis.tables import print_table
from repro.baselines.comparison import compare_schemes_on
from repro.distributed.engine import SimulationEngine
from repro.graphs.generators import planar_plus_random_edges, random_apollonian_network


def main() -> None:
    engine = SimulationEngine(seed=11)
    planar = random_apollonian_network(60, seed=11)
    nonplanar = planar_plus_random_edges(60, extra_edges=2, seed=11)

    rows = [row.as_dict() for row in
            compare_schemes_on(planar, nonplanar, seed=11, engine=engine)]
    print_table(rows, title="E5: certification mechanisms on the same 60-node network")
    print()

    scaling = certificate_size_scaling(sizes=[32, 64, 128, 256],
                                       families=["apollonian", "grid"],
                                       include_universal=True,
                                       engine=engine)
    print_table(scaling, title="Certificate size scaling: Theorem 1 vs the universal map")
    print()
    print_table([certificate_size_fit(scaling)],
                title="Fit of the Theorem 1 maximum certificate size against log2(n)")


if __name__ == "__main__":
    main()
