"""Run the dMAM interactive-proof baseline end to end and inspect the transcript.

This is the mechanism the paper improves on: a three-interaction randomized
protocol in the style of Naor–Parter–Yogev (SODA 2020).  The demo runs the
protocol honestly on a planar network, then shows two dishonest-prover
behaviours being caught (a forged global coin and a forged aggregation
product), estimates the acceptance rate over many challenge draws, and
contrasts the interaction pattern with the single-interaction deterministic
scheme of Theorem 1.

Everything executes through the unified
:class:`~repro.distributed.engine.SimulationEngine` runtime: Merlin's first
turn is computed once and cached, and every verification round runs on the
engine's cached view structures.
"""

from __future__ import annotations

import dataclasses
import random

from repro.analysis.tables import print_table
from repro.baselines.dmam import FIELD_PRIME, PlanarityDMAMProtocol
from repro.core.planarity_scheme import PlanarityScheme
from repro.distributed.engine import SimulationEngine
from repro.distributed.network import Network
from repro.graphs.generators import delaunay_planar_graph


def main() -> None:
    graph = delaunay_planar_graph(50, seed=17)
    network = Network(graph, seed=17)
    protocol = PlanarityDMAMProtocol()
    engine = SimulationEngine(seed=17)

    honest = engine.run_interactive(protocol, network, seed=17)
    rows = [{
        "run": "honest Merlin",
        "interactions": honest.interactions,
        "accepted": honest.accepted,
        "max message bits": honest.max_certificate_bits,
    }]

    # dishonest Merlin 1: relay a wrong global random point (the first turn
    # comes from the engine's per-(network, protocol) cache)
    turn = engine.first_turn(protocol, network)
    challenges = protocol.draw_challenges(network, random.Random(17))
    second = protocol.second_turn(network, turn, challenges)
    forged_coin = {node: dataclasses.replace(msg, global_point=(msg.global_point + 1) % FIELD_PRIME)
                   for node, msg in second.items()}
    cheat1 = engine.run_interactive(protocol, network, seed=17,
                                    dishonest_first=turn.messages,
                                    dishonest_second=forged_coin)
    rows.append({"run": "Merlin forges the global coin", "interactions": 3,
                 "accepted": cheat1.accepted, "max message bits": cheat1.max_certificate_bits})

    # dishonest Merlin 2: corrupt one subtree aggregation product
    victim = next(iter(second))
    forged_product = dict(second)
    forged_product[victim] = dataclasses.replace(
        second[victim],
        push_product_subtree=(second[victim].push_product_subtree + 1) % FIELD_PRIME)
    cheat2 = engine.run_interactive(protocol, network, seed=17,
                                    dishonest_first=turn.messages,
                                    dishonest_second=forged_product)
    rows.append({"run": "Merlin forges a fingerprint product", "interactions": 3,
                 "accepted": cheat2.accepted, "max message bits": cheat2.max_certificate_bits})

    # the Theorem 1 scheme on the same network, for contrast
    scheme = PlanarityScheme()
    pls = engine.verify(scheme, network, engine.certify(scheme, network))
    rows.append({"run": "Theorem 1 PLS (deterministic, 1 interaction)", "interactions": 1,
                 "accepted": pls.accepted, "max message bits": pls.max_certificate_bits})

    print_table(rows, title="dMAM baseline vs the Theorem 1 proof-labeling scheme")

    # acceptance statistics over independent challenge draws: the honest
    # prover is accepted on every draw (completeness), and the structural
    # work is paid once thanks to the cached first turn + prepared verifiers
    estimate = engine.estimate_soundness_error(protocol, network, trials=25, seed=17)
    print()
    print(f"honest acceptance over {estimate.trials} challenge draws: "
          f"{estimate.all_accept_count}/{estimate.trials} "
          f"(accept-all rate {estimate.error_rate:.2f})")


if __name__ == "__main__":
    main()
